"""The fabric-agnostic :class:`Topology` base class and its link model.

Every interconnect family of the topology zoo (see
:mod:`repro.hardware.topologies`) models the same wafer: ``rows x cols``
compute dies with row-major flat ids. What a family chooses is which
directed die-to-die links exist and how each link is weighted — a
:class:`Link` carries a ``bandwidth_factor`` and a ``latency_factor``
relative to the baseline D2D link of
:class:`~repro.hardware.config.LinkConfig` (vertical TSV hops, long
backbone wires between chiplet gateways, and wraparound wires all scale
differently).

The base class owns everything that follows from the link set alone:

* link enumeration/lookup, adjacency, and healthy-die bookkeeping,
* BFS shortest paths (optionally avoiding links) and deterministic
  canonical routes (``xy_route`` / ``yx_route`` default to BFS; grid-like
  families override them with dimension-ordered routing),
* unweighted hop distances and weighted hop costs (memoised per source),
* contiguous-ring enumeration (rectangle fast path + backtracking
  Hamiltonian search) and ring hop penalties,
* near-square partitioning into die groups,
* the opt-in :class:`RouteTables` memo, generalised here so every family
  gets route/ring memoisation for free (it used to live on
  ``MeshTopology`` only).

Families implement :meth:`Topology._link_specs` (and usually override
:meth:`hop_distance`/:meth:`collective_hop_factor` with cheaper analytic
forms) — see :mod:`repro.hardware.topologies.mesh` for the reference
implementation.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

Coord = Tuple[int, int]

#: One directed link as a family yields it: (src, dst, bandwidth_factor,
#: latency_factor).
LinkSpec = Tuple[int, int, float, float]


class RouteTables:
    """Memoised pure routing decisions of one :class:`Topology`.

    A topology's link set and health state are frozen at construction, so
    the expensive pure functions the mapping layer calls per task —
    ring/chain orderings of die groups, route paths, ring hop factors —
    always return the same value for the same arguments on the same
    topology instance. The tables cache exactly those return values, so a
    cache hit is bit-identical to a recomputation by construction.

    The tables are opt-in (:meth:`Topology.enable_route_tables`): the
    default evaluation path stays memo-free, which is what the
    batched-vs-per-point parity tests compare against. One batch layer
    (:class:`repro.costmodel.portfolio.PortfolioTables`) enables them on
    the wafer shared by a portfolio sweep, where the same groups and
    src/dst pairs recur across every candidate spec of every point.

    Attributes:
        hits: lookups served from the tables.
        misses: lookups that ran the underlying computation.
    """

    __slots__ = ("rings", "paths", "ring_hops", "hits", "misses")

    def __init__(self) -> None:
        self.rings: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], bool]] = {}
        self.paths: Dict[Tuple[int, int, bool], Tuple["Link", ...]] = {}
        self.ring_hops: Dict[Tuple[Tuple[int, ...], bool], int] = {}
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: ``hits``, ``misses``, ``entries``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self.rings) + len(self.paths) + len(self.ring_hops),
        }


def die_id(row: int, col: int, cols: int) -> int:
    """Convert a (row, col) coordinate to a flat die id (row-major)."""
    return row * cols + col


def die_coord(die: int, cols: int) -> Coord:
    """Convert a flat die id back to its (row, col) coordinate."""
    return divmod(die, cols)


@dataclass(frozen=True)
class Link:
    """A directed D2D link between two dies of the fabric.

    Attributes:
        src: source die id.
        dst: destination die id.
        bandwidth_factor: usable bandwidth relative to the baseline D2D
            link (1.0 for a plain nearest-neighbour mesh link).
        latency_factor: per-hop latency relative to the baseline D2D link
            (vertical TSVs and long backbone wires cost more than 1.0).
    """

    src: int
    dst: int
    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0

    def reversed(self) -> "Link":
        """Return the link in the opposite direction (same weights)."""
        return Link(self.dst, self.src, self.bandwidth_factor,
                    self.latency_factor)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Link({self.src}->{self.dst})"


class Topology:
    """Base class of every interconnect fabric of the topology zoo.

    Args:
        rows: number of die rows.
        cols: number of die columns.
        failed_links: optional iterable of (src, dst) pairs to mark as failed;
            both directions are removed for each pair.
        failed_dies: optional iterable of die ids that are entirely faulty.

    Class attributes (family metadata, consumed by the registry, the
    ``repro list --topologies`` table, and the generated docs):

    * ``family`` — the registered fabric name,
    * ``params`` — constructor keyword params beyond the shared geometry,
      mapped to their defaults,
    * ``link_model`` — a one-line description of the family's link set.
    """

    family: str = "abstract"
    params: Mapping[str, object] = {}
    link_model: str = "abstract"

    #: Whether the fabric's link graph is bipartite, in which case an
    #: odd-sized group can never close into a ring (the mesh's even-parity
    #: early-out). Non-bipartite families (odd torus dimensions, even
    #: express strides) must skip that shortcut.
    _bipartite: bool = True

    def __init__(
        self,
        rows: int,
        cols: int,
        failed_links: Optional[Iterable[Tuple[int, int]]] = None,
        failed_dies: Optional[Iterable[int]] = None,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError(
                f"{self.family} dimensions must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._failed_dies = set(failed_dies or ())
        self._failed_links = set()
        for src, dst in failed_links or ():
            self._failed_links.add((src, dst))
            self._failed_links.add((dst, src))
        self._links = self._build_links()
        self._adjacency = self._build_adjacency()
        self._hop_memo: Dict[int, Dict[int, int]] = {}
        self._cost_memo: Dict[int, Dict[int, float]] = {}
        #: Optional routing memo (see :class:`RouteTables`); ``None`` keeps
        #: every routing call memo-free.
        self.route_tables: Optional[RouteTables] = None

    # Construction helpers ---------------------------------------------------

    def _link_specs(self) -> Iterator[LinkSpec]:
        """Yield every directed link of the healthy full fabric.

        Families implement this as the single definition of their link set;
        fault filtering happens in :meth:`_build_links`. Yield order is the
        fabric's canonical link order (it fixes ``links()`` ordering).
        """
        raise NotImplementedError

    def _build_links(self) -> Dict[Tuple[int, int], Link]:
        links: Dict[Tuple[int, int], Link] = {}
        for src, dst, bandwidth_factor, latency_factor in self._link_specs():
            if src in self._failed_dies or dst in self._failed_dies:
                continue
            if (src, dst) in self._failed_links:
                continue
            if (src, dst) in links:
                continue
            links[(src, dst)] = Link(src, dst, bandwidth_factor,
                                     latency_factor)
        return links

    def _build_adjacency(self) -> Dict[int, List[int]]:
        adjacency: Dict[int, List[int]] = {die: [] for die in self.dies()}
        for src, dst in self._links:
            adjacency[src].append(dst)
        for neighbours in adjacency.values():
            neighbours.sort()
        return adjacency

    def enable_route_tables(self) -> RouteTables:
        """Attach (or return the existing) :class:`RouteTables` memo.

        Safe because the fabric's link set and health state are immutable
        after construction; idempotent so several sharers converge on one
        memo.
        """
        if self.route_tables is None:
            self.route_tables = RouteTables()
        return self.route_tables

    # Basic queries ----------------------------------------------------------

    @property
    def num_dies(self) -> int:
        """Number of healthy dies on the fabric."""
        return self.rows * self.cols - len(self._failed_dies)

    def dies(self) -> List[int]:
        """Return the ids of all healthy dies, in row-major order."""
        return [
            die
            for die in range(self.rows * self.cols)
            if die not in self._failed_dies
        ]

    def is_healthy(self, die: int) -> bool:
        """Whether ``die`` exists on the fabric and is not marked faulty."""
        return 0 <= die < self.rows * self.cols and die not in self._failed_dies

    def coord(self, die: int) -> Coord:
        """Return the (row, col) coordinate of ``die``."""
        if not 0 <= die < self.rows * self.cols:
            raise ValueError(
                f"die {die} out of range for {self.rows}x{self.cols} "
                f"{self.family}")
        return die_coord(die, self.cols)

    def die_at(self, row: int, col: int) -> int:
        """Return the die id at coordinate (row, col)."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(
                f"coordinate ({row}, {col}) out of range for "
                f"{self.rows}x{self.cols} {self.family}"
            )
        return die_id(row, col, self.cols)

    def links(self) -> List[Link]:
        """Return all healthy directed links."""
        return list(self._links.values())

    def link(self, src: int, dst: int) -> Link:
        """Return the directed link from ``src`` to ``dst``.

        Raises:
            KeyError: if the dies share no link or the link has failed.
        """
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no healthy link between die {src} and die {dst}") from None

    def has_link(self, src: int, dst: int) -> bool:
        """Whether a healthy directed link exists from ``src`` to ``dst``."""
        return (src, dst) in self._links

    def neighbours(self, die: int) -> List[int]:
        """Return the healthy dies directly reachable from ``die``."""
        return list(self._adjacency.get(die, ()))

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimum number of links between two dies on this fabric.

        The base implementation is a memoised BFS over the healthy link
        set; grid-like families override it with a closed form (Manhattan
        distance on the mesh). Returns a large sentinel (``rows * cols``)
        when the dies are disconnected so ordering heuristics still rank
        reachable dies first.
        """
        self.coord(src)
        self.coord(dst)
        if src == dst:
            return 0
        distances = self._hop_memo.get(src)
        if distances is None:
            distances = self._bfs_distances(src)
            self._hop_memo[src] = distances
        return distances.get(dst, self.rows * self.cols)

    def _bfs_distances(self, src: int) -> Dict[int, int]:
        distances = {src: 0}
        frontier = [src]
        while frontier:
            next_frontier: List[int] = []
            for die in frontier:
                for neighbour in self._adjacency.get(die, ()):
                    if neighbour not in distances:
                        distances[neighbour] = distances[die] + 1
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return distances

    def hop_cost(self, src: int, dst: int) -> int:
        """Weighted hop distance: cheapest latency-factor sum, ceiled.

        This is the fabric's hop model as the collective cost layer sees
        it: a vertical or backbone hop with ``latency_factor`` 2.0 counts
        like two mesh hops. On uniformly-weighted fabrics it equals
        :meth:`hop_distance` exactly (the mesh overrides it with the
        Manhattan form for that reason).
        """
        self.coord(src)
        self.coord(dst)
        if src == dst:
            return 0
        costs = self._cost_memo.get(src)
        if costs is None:
            costs = self._dijkstra_costs(src)
            self._cost_memo[src] = costs
        cost = costs.get(dst)
        if cost is None:
            return self.rows * self.cols
        return max(1, math.ceil(cost - 1e-9))

    def _dijkstra_costs(self, src: int) -> Dict[int, float]:
        costs: Dict[int, float] = {}
        queue: List[Tuple[float, int]] = [(0.0, src)]
        while queue:
            cost, die = heapq.heappop(queue)
            if die in costs:
                continue
            costs[die] = cost
            for neighbour in self._adjacency.get(die, ()):
                if neighbour in costs:
                    continue
                link = self._links[(die, neighbour)]
                heapq.heappush(queue, (cost + link.latency_factor, neighbour))
        return costs

    def are_adjacent(self, a: int, b: int) -> bool:
        """Whether dies ``a`` and ``b`` are direct fabric neighbours."""
        return (a, b) in self._links or (b, a) in self._links

    # Routing ----------------------------------------------------------------

    def xy_route(self, src: int, dst: int) -> List[Link]:
        """The fabric's canonical preferred route from ``src`` to ``dst``.

        The base implementation is a deterministic BFS shortest path
        (ascending neighbour order); mesh-like families override it with
        X-first dimension-ordered routing. Returns the list of directed
        links traversed; an empty list when ``src == dst``.
        """
        return self._canonical_route(src, dst, reverse=False)

    def yx_route(self, src: int, dst: int) -> List[Link]:
        """The fabric's canonical alternative route (traffic spreading).

        The base implementation is a BFS shortest path expanding
        neighbours in descending order, so it diverges from
        :meth:`xy_route` where the fabric offers a choice; mesh-like
        families override it with Y-first dimension-ordered routing.
        """
        return self._canonical_route(src, dst, reverse=True)

    def _canonical_route(self, src: int, dst: int, reverse: bool) -> List[Link]:
        if not self.is_healthy(src) or not self.is_healthy(dst):
            raise ValueError(f"cannot route between unhealthy dies {src} and {dst}")
        if src == dst:
            return []
        frontier = [src]
        predecessors: Dict[int, Tuple[int, Link]] = {}
        visited = {src}
        while frontier:
            next_frontier: List[int] = []
            for die in frontier:
                neighbours = self._adjacency.get(die, ())
                if reverse:
                    neighbours = list(reversed(neighbours))
                for neighbour in neighbours:
                    if neighbour in visited:
                        continue
                    visited.add(neighbour)
                    predecessors[neighbour] = (die, self._links[(die, neighbour)])
                    if neighbour == dst:
                        return self._reconstruct(predecessors, src, dst)
                    next_frontier.append(neighbour)
            frontier = next_frontier
        raise KeyError(
            f"no route between die {src} and die {dst} on this {self.family}")

    def shortest_path(
        self, src: int, dst: int, avoid_links: Optional[Sequence[Link]] = None
    ) -> Optional[List[Link]]:
        """Breadth-first shortest path that can avoid a set of links.

        Used by the traffic-conscious optimizer to find detours around
        congested or failed links. Returns ``None`` when no path exists.
        """
        if src == dst:
            return []
        avoid = {(link.src, link.dst) for link in (avoid_links or ())}
        frontier = [src]
        predecessors: Dict[int, Tuple[int, Link]] = {}
        visited = {src}
        while frontier:
            next_frontier: List[int] = []
            for die in frontier:
                for neighbour in self.neighbours(die):
                    if neighbour in visited:
                        continue
                    if (die, neighbour) in avoid:
                        continue
                    visited.add(neighbour)
                    predecessors[neighbour] = (die, self._links[(die, neighbour)])
                    if neighbour == dst:
                        return self._reconstruct(predecessors, src, dst)
                    next_frontier.append(neighbour)
            frontier = next_frontier
        return None

    @staticmethod
    def _reconstruct(
        predecessors: Dict[int, Tuple[int, Link]], src: int, dst: int
    ) -> List[Link]:
        path: List[Link] = []
        node = dst
        while node != src:
            prev, link = predecessors[node]
            path.append(link)
            node = prev
        path.reverse()
        return path

    # Ring enumeration (used by TATP) -----------------------------------------

    def contiguous_ring(self, dies: Sequence[int]) -> Optional[List[int]]:
        """Order ``dies`` into a physical ring of adjacent dies, if one exists.

        A physical ring is a Hamiltonian cycle on the induced subgraph where
        consecutive dies (and the last/first pair) are fabric neighbours.
        Groups of two adjacent dies are treated as a degenerate ring
        (ping-pong).

        Returns the ring ordering or ``None`` if the group cannot form one.
        """
        group = list(dict.fromkeys(dies))
        if len(group) != len(dies):
            raise ValueError("die group contains duplicates")
        for die in group:
            if not self.is_healthy(die):
                return None
        if len(group) == 1:
            return group
        if len(group) == 2:
            return group if self.are_adjacent(group[0], group[1]) else None
        # Rings on a bipartite fabric need an even number of members.
        if self._bipartite and len(group) % 2 == 1:
            return None
        rectangle = self._rectangular_ring(group)
        if rectangle is not None:
            return rectangle
        return self._hamiltonian_cycle(group)

    def _rectangular_ring(self, group: Sequence[int]) -> Optional[List[int]]:
        """Fast path: a full r x c rectangle of grid-adjacent dies rings.

        The boustrophedon cycle is verified against the fabric's real
        adjacency before being returned, so families whose rectangles are
        not internally grid-linked (stacked decks, chiplet boundaries)
        safely fall through to the Hamiltonian search.
        """
        coords = sorted(self.coord(die) for die in group)
        rows = sorted({row for row, _ in coords})
        cols = sorted({col for _, col in coords})
        if rows != list(range(rows[0], rows[-1] + 1)):
            return None
        if cols != list(range(cols[0], cols[-1] + 1)):
            return None
        if len(rows) * len(cols) != len(group):
            return None
        expected = {(row, col) for row in rows for col in cols}
        if set(coords) != expected:
            return None
        if len(rows) == 1 or len(cols) == 1:
            # A straight line of >2 dies cannot close into a cycle (a torus
            # wraparound line can; the torus overrides this hook).
            return self._line_ring(rows, cols)
        ring_coords = self._boustrophedon_cycle(rows, cols)
        ring = [self.die_at(row, col) for row, col in ring_coords]
        if not self._is_ring(ring):
            return None
        return ring

    def _line_ring(self, rows: List[int], cols: List[int]) -> Optional[List[int]]:
        """Ring ordering for a full straight-line group, when the fabric
        closes lines into cycles (wraparound); ``None`` otherwise."""
        return None

    @staticmethod
    def _boustrophedon_cycle(rows: List[int], cols: List[int]) -> List[Coord]:
        """Build a cycle covering a rectangle: snake down inner columns, return
        up the first column."""
        first_col = cols[0]
        other_cols = cols[1:]
        cycle: List[Coord] = []
        for index, row in enumerate(rows):
            ordered = other_cols if index % 2 == 0 else list(reversed(other_cols))
            for col in ordered:
                cycle.append((row, col))
        for row in reversed(rows):
            cycle.append((row, first_col))
        return cycle

    def _hamiltonian_cycle(self, group: Sequence[int]) -> Optional[List[int]]:
        """Backtracking Hamiltonian-cycle search for small irregular groups."""
        group_set = set(group)
        if len(group) > 16:
            # Exhaustive search would be too slow; rely on the rectangle fast
            # path for large groups (which covers the mappings TEMP generates).
            return None
        start = group[0]
        path = [start]
        used = {start}

        def backtrack() -> Optional[List[int]]:
            if len(path) == len(group):
                if self.are_adjacent(path[-1], start):
                    return list(path)
                return None
            for neighbour in self.neighbours(path[-1]):
                if neighbour in group_set and neighbour not in used:
                    used.add(neighbour)
                    path.append(neighbour)
                    result = backtrack()
                    if result is not None:
                        return result
                    path.pop()
                    used.remove(neighbour)
            return None

        return backtrack()

    def _is_ring(self, ordering: Sequence[int]) -> bool:
        if len(ordering) < 3:
            return False
        pairs = list(zip(ordering, list(ordering[1:]) + [ordering[0]]))
        return all(self.are_adjacent(a, b) for a, b in pairs)

    def _ring_step_cost(self, ring: Sequence[int]) -> int:
        """Worst per-step cost of a contiguous ring (1 on uniform fabrics).

        A ring whose steps traverse weighted links (vertical TSVs,
        backbone wires) pays the worst link's latency factor per logical
        step even though every step is a single physical hop.
        """
        worst = 1.0
        pairs = zip(ring, list(ring[1:]) + [ring[0]])
        for a, b in pairs:
            link = self._links.get((a, b)) or self._links.get((b, a))
            if link is not None:
                worst = max(worst, link.latency_factor)
        return max(1, math.ceil(worst - 1e-9))

    def ring_penalty_hops(self, dies: Sequence[int]) -> int:
        """Worst-case hop cost needed to close a logical ring over ``dies``.

        A contiguous physical ring over uniform links yields 1 (all
        transfers are one baseline hop); weighted ring steps pay the worst
        link's latency factor. A non-contiguous group pays the longest hop
        cost between logical neighbours — the tail-latency effect of
        Fig. 5(a).
        """
        if len(dies) <= 1:
            return 0
        ring = self.contiguous_ring(dies)
        if ring is not None:
            return self._ring_step_cost(ring)
        ordering = list(dies)
        pairs = list(zip(ordering, ordering[1:] + [ordering[0]]))
        return max(self.hop_cost(a, b) for a, b in pairs)

    # Analytical hop model -----------------------------------------------------

    def collective_hop_factor(self) -> int:
        """First-order physical hops per logical ring step of this fabric.

        This is the fabric's hop model as the *analytical* cost layer
        (:class:`repro.costmodel.tables.CostTables`) sees it, before any
        concrete mapping exists: the worst ring penalty over the fabric's
        canonical near-square partition. Uniform grid fabrics probe to 1
        (the seed cost model's value); stacked and hierarchical fabrics
        probe higher because some canonical tiles cannot ring without
        crossing weighted links.
        """
        size = min(4, self.num_dies)
        if size <= 1:
            return 1
        try:
            groups = self.partition_into_groups(size)
        except ValueError:
            return 1
        worst = 1
        for group in groups:
            worst = max(worst, self.ring_penalty_hops(group))
        return worst

    # Grouping helpers ---------------------------------------------------------

    def partition_into_groups(self, group_size: int) -> List[List[int]]:
        """Partition the fabric into contiguous die groups of ``group_size``.

        Groups are carved as near-square rectangles when possible (so that they
        admit physical rings on grid-like fabrics), falling back to row-major
        slices. Faulty dies are skipped. This mirrors the die-allocation
        strategy of Fig. 7(a).
        """
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        dies = self.dies()
        if group_size > len(dies):
            raise ValueError(
                f"group_size {group_size} exceeds healthy die count {len(dies)}"
            )
        shape = self._best_group_shape(group_size)
        if shape is not None and not self._failed_dies:
            return self._tile_rectangles(shape, group_size)
        # Fallback: simple row-major chunks of healthy dies.
        return [
            dies[index: index + group_size]
            for index in range(0, len(dies) - group_size + 1, group_size)
        ]

    def _best_group_shape(self, group_size: int) -> Optional[Tuple[int, int]]:
        best: Optional[Tuple[int, int]] = None
        best_aspect = None
        for height in range(1, group_size + 1):
            if group_size % height:
                continue
            width = group_size // height
            if height > self.rows or width > self.cols:
                continue
            if self.rows % height or self.cols % width:
                continue
            aspect = abs(height - width)
            if best_aspect is None or aspect < best_aspect:
                best, best_aspect = (height, width), aspect
        return best

    def _tile_rectangles(
        self, shape: Tuple[int, int], group_size: int
    ) -> List[List[int]]:
        height, width = shape
        groups: List[List[int]] = []
        for row0 in range(0, self.rows, height):
            for col0 in range(0, self.cols, width):
                group = [
                    self.die_at(row, col)
                    for row in range(row0, row0 + height)
                    for col in range(col0, col0 + width)
                ]
                if len(group) == group_size:
                    groups.append(group)
        return groups

    # Family metadata ----------------------------------------------------------

    @classmethod
    def check_geometry(cls, rows: int, cols: int,
                       params: Mapping[str, object]) -> None:
        """Validate family params against a die grid without building links.

        Raises:
            ValueError: when the params cannot describe a ``rows x cols``
                fabric (bad divisibility, out-of-range values, ...).
        """
        if rows < 1 or cols < 1:
            raise ValueError(
                f"{cls.family} dimensions must be positive, got {rows}x{cols}")

    def describe(self) -> Dict[str, object]:
        """Plain-JSON summary of this fabric instance."""
        return {
            "family": self.family,
            "rows": self.rows,
            "cols": self.cols,
            "dies": self.num_dies,
            "links": len(self._links),
            "collective_hop_factor": self.collective_hop_factor(),
        }
