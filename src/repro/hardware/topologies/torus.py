"""Wraparound torus fabric: the mesh plus row/column wrap links.

A 2D torus folds each row and column into a cycle by adding links
between the first and last die of every row (and column). Wrap wires are
physically long, so they carry their own bandwidth/latency factors
(default 1.0 — an idealised torus). Wrap links only exist along a
dimension of length >= 3; on shorter dimensions the "wrap" would
duplicate the existing mesh link.

The payoff for collectives: a full row (or column) of dies closes into a
physical ring via its wrap link, so groups the mesh can only serve as
hop-``len-1``-penalised chains become penalty-1 rings here.
"""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional

from repro.hardware.topologies.base import Link, LinkSpec, Topology, die_id
from repro.hardware.topologies.mesh import MeshTopology


class TorusTopology(MeshTopology):
    """A 2D wraparound torus of dies.

    Args:
        rows, cols, failed_links, failed_dies: as :class:`MeshTopology`.
        wrap_bandwidth_factor: bandwidth of a wraparound link relative to a
            baseline mesh link.
        wrap_latency_factor: per-hop latency of a wraparound link relative
            to a baseline mesh link.
    """

    family = "torus"
    params = {"wrap_bandwidth_factor": 1.0, "wrap_latency_factor": 1.0}
    link_model = ("mesh links plus row/column wraparound links "
                  "(own bandwidth/latency factors)")

    def __init__(self, rows, cols, failed_links=None, failed_dies=None, *,
                 wrap_bandwidth_factor: float = 1.0,
                 wrap_latency_factor: float = 1.0) -> None:
        if wrap_bandwidth_factor <= 0 or wrap_latency_factor <= 0:
            raise ValueError("torus wrap factors must be positive")
        self.wrap_bandwidth_factor = float(wrap_bandwidth_factor)
        self.wrap_latency_factor = float(wrap_latency_factor)
        super().__init__(rows, cols, failed_links, failed_dies)
        # A torus dimension of odd length >= 3 creates odd cycles, so the
        # bipartite even-size shortcut for rings only holds when both
        # wrapped dimensions are even (or too short to wrap).
        self._bipartite = ((rows < 3 or rows % 2 == 0)
                           and (cols < 3 or cols % 2 == 0))

    def _link_specs(self) -> Iterator[LinkSpec]:
        yield from super()._link_specs()
        bw, lat = self.wrap_bandwidth_factor, self.wrap_latency_factor
        if self.cols >= 3:
            for row in range(self.rows):
                first = die_id(row, 0, self.cols)
                last = die_id(row, self.cols - 1, self.cols)
                yield last, first, bw, lat
                yield first, last, bw, lat
        if self.rows >= 3:
            for col in range(self.cols):
                first = die_id(0, col, self.cols)
                last = die_id(self.rows - 1, col, self.cols)
                yield last, first, bw, lat
                yield first, last, bw, lat

    def _wrap_deltas(self, a: int, b: int, length: int, wraps: bool) -> int:
        direct = abs(a - b)
        if not wraps:
            return direct
        return min(direct, length - direct)

    def hop_distance(self, src: int, dst: int) -> int:
        """Wrap-aware Manhattan distance on the full torus grid."""
        (r1, c1), (r2, c2) = self.coord(src), self.coord(dst)
        dr = self._wrap_deltas(r1, r2, self.rows, self.rows >= 3)
        dc = self._wrap_deltas(c1, c2, self.cols, self.cols >= 3)
        return dr + dc

    def hop_cost(self, src: int, dst: int) -> int:
        # Wrap links may be weighted, so fall back to the Dijkstra base.
        return Topology.hop_cost(self, src, dst)

    def _line_ring(self, rows: List[int], cols: List[int]) -> Optional[List[int]]:
        """A full wrapped row (or column) closes into a ring via its wrap link."""
        if len(rows) == 1 and len(cols) == self.cols and self.cols >= 3:
            ring = [self.die_at(rows[0], col) for col in cols]
            if self._is_ring(ring):
                return ring
        if len(cols) == 1 and len(rows) == self.rows and self.rows >= 3:
            ring = [self.die_at(row, cols[0]) for row in rows]
            if self._is_ring(ring):
                return ring
        return None

    def are_adjacent(self, a: int, b: int) -> bool:
        return (a, b) in self._links or (b, a) in self._links

    def collective_hop_factor(self) -> int:
        # Probe like the base class: wrap rings usually keep this at the
        # ceil of the wrap latency factor (1 for an idealised torus).
        return Topology.collective_hop_factor(self)

    # Routing ----------------------------------------------------------------

    def _dimension_ordered_route(
        self, src: int, dst: int, x_first: bool
    ) -> List[Link]:
        if not self.is_healthy(src) or not self.is_healthy(dst):
            raise ValueError(f"cannot route between unhealthy dies {src} and {dst}")
        path: List[Link] = []
        row, col = self.coord(src)
        drow, dcol = self.coord(dst)

        def col_step_dir() -> int:
            direct = dcol - col
            if self.cols >= 3 and abs(direct) > self.cols - abs(direct):
                return -1 if direct > 0 else 1
            return 1 if direct > 0 else -1

        def row_step_dir() -> int:
            direct = drow - row
            if self.rows >= 3 and abs(direct) > self.rows - abs(direct):
                return -1 if direct > 0 else 1
            return 1 if direct > 0 else -1

        def step_col() -> None:
            nonlocal col
            while col != dcol:
                ncol = (col + col_step_dir()) % self.cols
                path.append(self._require_link(
                    die_id(row, col, self.cols), die_id(row, ncol, self.cols)))
                col = ncol

        def step_row() -> None:
            nonlocal row
            while row != drow:
                nrow = (row + row_step_dir()) % self.rows
                path.append(self._require_link(
                    die_id(row, col, self.cols), die_id(nrow, col, self.cols)))
                row = nrow

        if x_first:
            step_col()
            step_row()
        else:
            step_row()
            step_col()
        return path
