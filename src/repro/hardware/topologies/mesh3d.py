"""3D stacked mesh fabric: the die grid folded into vertically-linked decks.

The ``rows x cols`` die grid is folded into ``layers`` stacked decks of
``rows // layers`` rows each (global rows ``[z*h, (z+1)*h)`` form deck
``z``). In-plane links are ordinary mesh links but stop at deck
boundaries; each die additionally gets a vertical (TSV-style) link to
the die at the same (local row, col) position of the deck above/below —
i.e. between global rows ``r`` and ``r + h`` of the same column.
Vertical links carry their own bandwidth/latency factors (TSVs are
typically lower-bandwidth and slower than in-plane D2D wires).

Keeping the flat row-major die-id space means every consumer
(partitioning, snake orders, die counts) works unchanged; only the link
set — and hence routing, ring formation, and hop costs — differs from
the plain mesh.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.hardware.topologies.base import LinkSpec, Topology, die_id


class StackedMeshTopology(Topology):
    """A stack of 2D mesh decks joined by weighted vertical links.

    Args:
        rows, cols, failed_links, failed_dies: as the base class; ``rows``
            must be divisible by ``layers``.
        layers: number of stacked decks (>= 2).
        vertical_bandwidth_factor: bandwidth of a vertical link relative to
            an in-plane link.
        vertical_latency_factor: per-hop latency of a vertical link relative
            to an in-plane link.
    """

    family = "mesh3d"
    params = {
        "layers": 2,
        "vertical_bandwidth_factor": 0.5,
        "vertical_latency_factor": 2.0,
    }
    link_model = ("per-deck mesh links plus vertical TSV links between decks "
                  "(own bandwidth/latency factors)")

    def __init__(self, rows, cols, failed_links=None, failed_dies=None, *,
                 layers: int = 2,
                 vertical_bandwidth_factor: float = 0.5,
                 vertical_latency_factor: float = 2.0) -> None:
        self.check_geometry(rows, cols, {
            "layers": layers,
            "vertical_bandwidth_factor": vertical_bandwidth_factor,
            "vertical_latency_factor": vertical_latency_factor,
        })
        self.layers = int(layers)
        self.deck_rows = rows // self.layers
        self.vertical_bandwidth_factor = float(vertical_bandwidth_factor)
        self.vertical_latency_factor = float(vertical_latency_factor)
        super().__init__(rows, cols, failed_links, failed_dies)

    @classmethod
    def check_geometry(cls, rows: int, cols: int,
                       params: Mapping[str, object]) -> None:
        super().check_geometry(rows, cols, params)
        layers = int(params.get("layers", cls.params["layers"]))
        if layers < 2:
            raise ValueError(f"mesh3d needs at least 2 layers, got {layers}")
        if rows % layers:
            raise ValueError(
                f"mesh3d needs rows divisible by layers, got rows={rows} "
                f"layers={layers}")
        if rows // layers < 1:
            raise ValueError(
                f"mesh3d with {layers} layers needs at least {layers} rows")
        bw = float(params.get("vertical_bandwidth_factor",
                              cls.params["vertical_bandwidth_factor"]))
        lat = float(params.get("vertical_latency_factor",
                               cls.params["vertical_latency_factor"]))
        if bw <= 0 or lat <= 0:
            raise ValueError("mesh3d vertical factors must be positive")

    def deck_of(self, die: int) -> int:
        """Return the deck index (layer) holding ``die``."""
        row, _ = self.coord(die)
        return row // self.deck_rows

    def _link_specs(self) -> Iterator[LinkSpec]:
        h = self.deck_rows
        for row in range(self.rows):
            for col in range(self.cols):
                src = die_id(row, col, self.cols)
                for drow, dcol in ((0, 1), (1, 0), (0, -1), (-1, 0)):
                    nrow, ncol = row + drow, col + dcol
                    if not (0 <= nrow < self.rows and 0 <= ncol < self.cols):
                        continue
                    # In-plane links do not cross deck boundaries.
                    if nrow // h != row // h:
                        continue
                    yield src, die_id(nrow, ncol, self.cols), 1.0, 1.0
                # Vertical link to the same position one deck up.
                if row + h < self.rows:
                    yield (src, die_id(row + h, col, self.cols),
                           self.vertical_bandwidth_factor,
                           self.vertical_latency_factor)
                if row - h >= 0:
                    yield (src, die_id(row - h, col, self.cols),
                           self.vertical_bandwidth_factor,
                           self.vertical_latency_factor)
