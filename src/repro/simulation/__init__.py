"""Analytical wafer-scale simulator.

This subpackage plays the role ASTRA-sim + Ramulator play in the paper: it
turns an execution plan (per-die FLOPs, memory footprint, communication tasks)
plus a mapping result (routed flows, hop factors, link loads) into time,
memory, bandwidth-utilisation, and power numbers.

* :mod:`repro.simulation.config` — tunable efficiency knobs (achievable MFU,
  per-round kernel overhead, link-granularity ramp) with defaults that follow
  the paper's characterisations.
* :mod:`repro.simulation.compute` — computation-latency model.
* :mod:`repro.simulation.communication` — collective / P2P / stream latency
  model including contention.
* :mod:`repro.simulation.memory` — HBM occupancy and DRAM-traffic model.
* :mod:`repro.simulation.power` — energy and power breakdowns.
* :mod:`repro.simulation.simulator` — the :class:`WaferSimulator` tying it all
  together into a :class:`SimulationReport`.
"""

from repro.simulation.config import SimulatorConfig
from repro.simulation.compute import compute_time
from repro.simulation.communication import collective_steps, task_time
from repro.simulation.memory import dram_traffic_bytes, fits_in_memory
from repro.simulation.power import PowerBreakdown, power_breakdown
from repro.simulation.simulator import SimulationReport, WaferSimulator

__all__ = [
    "SimulatorConfig",
    "compute_time",
    "collective_steps",
    "task_time",
    "dram_traffic_bytes",
    "fits_in_memory",
    "PowerBreakdown",
    "power_breakdown",
    "SimulationReport",
    "WaferSimulator",
]
