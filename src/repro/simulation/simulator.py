"""End-to-end wafer simulator.

:class:`WaferSimulator` combines the compute, communication, memory, and power
models into a single :class:`SimulationReport` for one training step of an
execution plan mapped onto a wafer. The report carries every metric the
paper's figures plot: step time with its breakdown, peak per-die memory and
OOM status, throughput, D2D bandwidth utilisation, and the power breakdown
with power efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.wafer import WaferScaleChip
from repro.mapping.engines import MappingEngine, MappingResult, get_engine
from repro.parallelism.strategies import ExecutionPlan
from repro.simulation.communication import bottleneck_time, task_time
from repro.simulation.compute import compute_time, compute_utilization
from repro.simulation.config import SimulatorConfig
from repro.simulation.memory import dram_traffic_bytes, fits_in_memory, memory_pressure
from repro.simulation.power import PowerBreakdown, power_breakdown, power_efficiency
from repro.workloads.training import MemoryFootprint


@dataclass
class SimulationReport:
    """Every metric of one simulated training step.

    Times are in seconds, memory in bytes, throughput in tokens/second, power
    in watts, and power efficiency in tokens/second/watt.
    """

    model_name: str
    spec_label: str
    engine: str
    compute_time: float
    critical_comm_time: float
    overlap_comm_time: float
    exposed_comm_time: float
    bubble_time: float
    step_time: float
    memory: MemoryFootprint
    memory_pressure: float
    oom: bool
    throughput: float
    compute_utilization: float
    bandwidth_utilization: float
    power: PowerBreakdown
    power_efficiency: float
    comm_time_by_dimension: Dict[str, float] = field(default_factory=dict)
    tatp_hop_factor: int = 1
    contention_factor: float = 1.0

    @property
    def total_comm_time(self) -> float:
        """Critical plus exposed communication time."""
        return self.critical_comm_time + self.exposed_comm_time

    def breakdown(self) -> Dict[str, float]:
        """Step-time breakdown used by the latency figures."""
        return {
            "compute": self.compute_time,
            "communication": self.total_comm_time,
            "bubble": self.bubble_time,
        }

    def normalized_breakdown(self) -> Dict[str, float]:
        """Breakdown normalised to the step time (sums to 1.0)."""
        if self.step_time <= 0:
            return {key: 0.0 for key in self.breakdown()}
        return {key: value / self.step_time for key, value in self.breakdown().items()}


class WaferSimulator:
    """Analytical simulator of LLM training steps on a wafer-scale chip."""

    def __init__(
        self,
        wafer: Optional[WaferScaleChip] = None,
        config: Optional[SimulatorConfig] = None,
    ) -> None:
        self.wafer = wafer or WaferScaleChip()
        self.config = config or SimulatorConfig()

    def simulate(
        self,
        plan: ExecutionPlan,
        mapping: Optional[MappingResult] = None,
        engine: str = "tcme",
    ) -> SimulationReport:
        """Simulate one training step of ``plan``.

        Args:
            plan: the execution plan produced by the strategy analysis.
            mapping: an existing mapping result; when omitted the named
                ``engine`` is run first.
            engine: mapping engine name used when ``mapping`` is None.

        Returns:
            The :class:`SimulationReport` of the step.
        """
        if mapping is None:
            mapping = get_engine(engine).map(plan, self.wafer)
        return self._simulate_mapped(plan, mapping)

    def simulate_with_engine(
        self, plan: ExecutionPlan, engine: MappingEngine
    ) -> SimulationReport:
        """Simulate ``plan`` using a pre-constructed mapping engine."""
        mapping = engine.map(plan, self.wafer)
        return self._simulate_mapped(plan, mapping)

    # Internals --------------------------------------------------------------------

    def _simulate_mapped(
        self, plan: ExecutionPlan, mapping: MappingResult
    ) -> SimulationReport:
        wafer_config = self.wafer.config
        die = wafer_config.die
        spec = plan.spec
        layers_per_stage = max(1, plan.model.num_layers // spec.pp)

        # Computation ---------------------------------------------------------------
        effective_peak = self._slowest_die_flops(mapping)
        comp_time = compute_time(
            plan.flops_per_device,
            die,
            self.config,
            num_layers=layers_per_stage,
            tatp_rounds=plan.tatp_rounds_per_layer,
            peak_flops_override=effective_peak,
        )

        # Critical-path communication -------------------------------------------------
        critical_time = 0.0
        comm_by_dimension: Dict[str, float] = {}
        for task in plan.comm_tasks:
            hop_factor = mapping.hop_factor_for(task)
            one = task_time(task, wafer_config.d2d, self.config,
                            hop_factor=hop_factor)
            total = one * task.count
            critical_time += total
            key = task.dimension or task.kind.value
            comm_by_dimension[key] = comm_by_dimension.get(key, 0.0) + total
        critical_floor = bottleneck_time(
            mapping.critical_link_loads.max_load(), wafer_config.d2d, self.config)
        critical_time = max(critical_time, critical_floor)

        # Overlappable communication ---------------------------------------------------
        contention = self._overlap_contention_factor(mapping)
        overlap_time = 0.0
        for task in plan.overlap_tasks:
            hop_factor = mapping.hop_factor_for(task)
            one = task_time(task, wafer_config.d2d, self.config,
                            hop_factor=hop_factor,
                            contention_factor=contention)
            total = one * task.count
            overlap_time += total
            key = task.dimension or task.kind.value
            comm_by_dimension[key] = comm_by_dimension.get(key, 0.0) + total
        # Multi-hop relays concentrate streaming traffic on shared links; the
        # busiest such link bounds how fast the overlappable phase can drain.
        overlap_floor = bottleneck_time(
            self._overlap_max_link_load(mapping), wafer_config.d2d, self.config)
        overlap_time = max(overlap_time, overlap_floor)
        hideable = comp_time * self.config.overlap_efficiency
        exposed_time = max(0.0, overlap_time - hideable)

        # Pipeline bubble ---------------------------------------------------------------
        busy_time = comp_time + critical_time + exposed_time
        bubble_time = self._bubble_time(spec.pp, plan.num_microbatches, busy_time)
        step_time = busy_time + bubble_time

        # Memory --------------------------------------------------------------------------
        footprint = plan.memory
        oom = not fits_in_memory(footprint, die)
        pressure = memory_pressure(footprint, die)

        # Throughput and utilisation ---------------------------------------------------------
        tokens = plan.model.tokens_per_batch
        throughput = tokens / step_time if step_time > 0 else 0.0
        comp_util = compute_utilization(
            plan.flops_per_device * plan.num_devices, step_time, die,
            num_dies=plan.num_devices)
        bw_util = mapping.link_loads.utilization(
            self.wafer.topology, step_time, wafer_config.d2d.bandwidth)

        # Power -------------------------------------------------------------------------------
        total_flops = plan.flops_per_device * plan.num_devices
        dram_bytes = dram_traffic_bytes(plan) * plan.num_devices
        comm_link_bytes = mapping.link_loads.total_bytes()
        power = power_breakdown(
            total_flops, dram_bytes, comm_link_bytes, step_time, wafer_config)
        efficiency = power_efficiency(throughput, power.total)

        return SimulationReport(
            model_name=plan.model.name,
            spec_label=spec.label(),
            engine=mapping.engine,
            compute_time=comp_time,
            critical_comm_time=critical_time,
            overlap_comm_time=overlap_time,
            exposed_comm_time=exposed_time,
            bubble_time=bubble_time,
            step_time=step_time,
            memory=footprint,
            memory_pressure=pressure,
            oom=oom,
            throughput=throughput,
            compute_utilization=comp_util,
            bandwidth_utilization=bw_util,
            power=power,
            power_efficiency=efficiency,
            comm_time_by_dimension=comm_by_dimension,
            tatp_hop_factor=mapping.tatp_hop_factor,
            contention_factor=contention,
        )

    def _slowest_die_flops(self, mapping: MappingResult) -> float:
        """Peak FLOPS of the slowest die in the mapping (fault derating)."""
        if not mapping.dies:
            return 0.0
        return min(self.wafer.die(die_id).peak_flops for die_id in mapping.dies)

    @staticmethod
    def _overlap_max_link_load(mapping: MappingResult) -> float:
        """Busiest-link byte load contributed by overlappable traffic."""
        total = mapping.link_loads.loads
        critical = mapping.critical_link_loads.loads
        worst = 0.0
        for link, load in total.items():
            overlap_load = load - critical.get(link, 0.0)
            worst = max(worst, overlap_load)
        return worst

    @staticmethod
    def _overlap_contention_factor(mapping: MappingResult) -> float:
        """Slowdown of overlappable traffic from links shared with critical traffic."""
        total = mapping.link_loads.loads
        critical = mapping.critical_link_loads.loads
        factor = 1.0
        for link, load in total.items():
            overlap_load = load - critical.get(link, 0.0)
            if overlap_load <= 0:
                continue
            factor = max(factor, load / overlap_load)
        return factor

    @staticmethod
    def _bubble_time(pp: int, microbatches: int, busy_time: float) -> float:
        """Pipeline bubble time for a 1F1B-style schedule."""
        if pp <= 1:
            return 0.0
        micro = max(1, microbatches)
        bubble_fraction = (pp - 1) / (micro + pp - 1)
        if bubble_fraction >= 1.0:
            return busy_time * (pp - 1)
        return busy_time * bubble_fraction / (1.0 - bubble_fraction)
