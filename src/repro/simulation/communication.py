"""Communication-latency model for the wafer mesh.

Each communication task's time combines three effects the paper's analysis
highlights:

* **per-step latency** — ring algorithms take ``O(p)`` steps, each paying the
  D2D link latency multiplied by the physical hop factor of the mapping (the
  tail-latency effect of non-contiguous groups),
* **serialisation** — the wire bytes each device injects divided by the
  *effective* link bandwidth, which ramps with transfer granularity
  (small per-step chunks never reach the 4 TB/s peak),
* **contention** — concurrent flows sharing a link slow each other down; the
  mapping's link-load statistics provide the slowdown factor.
"""

from __future__ import annotations


from repro.hardware.config import LinkConfig
from repro.parallelism.comm import CollectiveType, CommTask
from repro.simulation.config import SimulatorConfig


def collective_steps(kind: CollectiveType, group_size: int) -> int:
    """Number of logical communication steps of a ring-based collective."""
    if group_size <= 1:
        return 0
    if kind is CollectiveType.ALL_REDUCE:
        return 2 * (group_size - 1)
    if kind in (CollectiveType.ALL_GATHER, CollectiveType.REDUCE_SCATTER,
                CollectiveType.BROADCAST):
        return group_size - 1
    if kind is CollectiveType.STREAM:
        return group_size - 1
    return 1  # P2P


def effective_bandwidth(
    link: LinkConfig, chunk_bytes: float, config: SimulatorConfig
) -> float:
    """Effective link bandwidth for transfers of ``chunk_bytes``.

    Follows the paper's observation that D2D links need tens-to-hundreds of
    megabytes per transfer to reach peak efficiency: the achievable bandwidth
    ramps as ``peak * chunk / (chunk + ramp)``.
    """
    if chunk_bytes <= 0:
        return link.bandwidth
    ramp = config.link_ramp_bytes
    if ramp <= 0:
        return link.bandwidth
    return link.bandwidth * chunk_bytes / (chunk_bytes + ramp)


def task_time(
    task: CommTask,
    link: LinkConfig,
    config: SimulatorConfig,
    hop_factor: int = 1,
    contention_factor: float = 1.0,
) -> float:
    """Time for one execution of ``task`` (multiply by ``task.count`` outside).

    Args:
        task: the communication task (wire bytes per device, group size).
        link: D2D link configuration.
        config: simulator knobs (granularity ramp).
        hop_factor: worst physical hops per logical step of the mapping.
        contention_factor: slowdown from sharing links with other traffic
            (>= 1.0); 1.0 means contention-free.

    Returns:
        Seconds for one execution of the task.
    """
    if task.is_trivial:
        return 0.0
    if hop_factor < 1:
        raise ValueError(f"hop_factor must be >= 1, got {hop_factor}")
    if contention_factor < 1.0:
        raise ValueError(
            f"contention_factor must be >= 1.0, got {contention_factor}")
    steps = collective_steps(task.kind, task.group_size)
    if steps == 0:
        return 0.0
    chunk = task.bytes_per_device / steps
    bandwidth = effective_bandwidth(link, chunk, config)
    latency_term = steps * hop_factor * link.latency
    serialization = task.bytes_per_device * contention_factor / bandwidth
    # Multi-hop logical steps also consume bandwidth on every intermediate
    # link; the extra traversals show up as proportionally longer
    # serialisation when the path is shared (approximated by the hop factor on
    # the bandwidth term only when contention is not separately accounted).
    if contention_factor == 1.0 and hop_factor > 1:
        serialization *= hop_factor ** 0.5
    return latency_term + serialization


def bottleneck_time(
    max_link_bytes: float,
    link: LinkConfig,
    config: SimulatorConfig,
) -> float:
    """Lower bound on communication time from the busiest link's load."""
    if max_link_bytes <= 0:
        return 0.0
    bandwidth = effective_bandwidth(link, max_link_bytes, config)
    return max_link_bytes / bandwidth
