"""Energy and power models (Table I energy figures).

Total power is the sum of three contributions, each derived from an
operation count and an energy-per-operation figure:

* **computation** — executed FLOPs divided by the 2 TFLOPS/W efficiency,
* **DRAM** — HBM traffic at 6.0 pJ/bit,
* **communication** — D2D traffic (bytes x hops) at 5.0 pJ/bit.

The figures of the paper report power *breakdowns* and *power efficiency*
(throughput per watt), both of which this module provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hardware.config import WaferConfig


@dataclass(frozen=True)
class PowerBreakdown:
    """Average power draw of one training step, in watts."""

    compute: float
    dram: float
    communication: float

    @property
    def total(self) -> float:
        """Total average power in watts."""
        return self.compute + self.dram + self.communication

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for reports."""
        return {
            "compute": self.compute,
            "dram": self.dram,
            "communication": self.communication,
            "total": self.total,
        }

    def share(self, component: str) -> float:
        """Fraction of total power drawn by ``component``."""
        total = self.total
        if total <= 0:
            return 0.0
        return self.as_dict()[component] / total


def power_breakdown(
    total_flops: float,
    dram_bytes: float,
    comm_link_bytes: float,
    step_time: float,
    wafer: WaferConfig,
) -> PowerBreakdown:
    """Average power of a training step.

    Args:
        total_flops: FLOPs executed across the whole system during the step.
        dram_bytes: HBM bytes moved across the whole system during the step.
        comm_link_bytes: D2D link traversals in bytes (bytes x hops) across
            the whole system during the step.
        step_time: duration of the step in seconds.
        wafer: wafer configuration providing the energy coefficients.

    Returns:
        The :class:`PowerBreakdown` in watts.
    """
    if step_time <= 0:
        raise ValueError(f"step_time must be positive, got {step_time}")
    if min(total_flops, dram_bytes, comm_link_bytes) < 0:
        raise ValueError("energy inputs must be non-negative")
    compute_energy = total_flops / wafer.die.flops_per_watt
    dram_energy = dram_bytes * wafer.die.hbm.energy_per_byte
    comm_energy = comm_link_bytes * wafer.d2d.energy_per_byte
    return PowerBreakdown(
        compute=compute_energy / step_time,
        dram=dram_energy / step_time,
        communication=comm_energy / step_time,
    )


def power_efficiency(throughput_tokens_per_s: float, power_watts: float) -> float:
    """Throughput per watt (tokens per second per watt)."""
    if power_watts <= 0:
        return 0.0
    return throughput_tokens_per_s / power_watts
