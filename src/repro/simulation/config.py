"""Simulator efficiency knobs.

The analytical models are parameterised by a handful of efficiency constants
that correspond to effects the paper calls out explicitly:

* sustained matrix-engine utilisation (MFU) is well below peak,
* every kernel launch / TATP round pays a fixed scheduling overhead, so very
  fine-grained partitioning fragments the workload and loses utilisation
  ("diminishing returns via fragmented workloads"),
* D2D links only reach peak bandwidth for large transfer granularities
  ("typically tens to hundreds of megabytes"), so small per-round chunks see a
  reduced effective bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.config import MB, US


@dataclass(frozen=True)
class SimulatorConfig:
    """Tunable constants of the analytical performance model.

    Attributes:
        base_mfu: sustained fraction of peak FLOPS for large GEMM-dominated
            workloads (model FLOPS utilisation).
        kernel_overhead: fixed per-kernel / per-round scheduling overhead in
            seconds; multiplied by the number of operator launches per step.
        operators_per_layer: launches per transformer layer (Fig. 12 shows 13
            operators; forward + backward roughly doubles it).
        link_ramp_bytes: transfer size at which a D2D link reaches half of its
            peak bandwidth; effective bandwidth is
            ``peak * size / (size + ramp)``.
        dram_bytes_per_flop: HBM traffic per executed FLOP beyond the
            weight/activation working set (captures operand re-fetch for
            operators that do not fit in SRAM).
        overlap_efficiency: fraction of overlappable communication that can
            actually hide under computation (scheduling is never perfect).
        pipeline_microbatches: default number of microbatches for PP runs.
    """

    base_mfu: float = 0.75
    kernel_overhead: float = 1.5 * US
    operators_per_layer: int = 26
    link_ramp_bytes: float = 32.0 * MB
    dram_bytes_per_flop: float = 0.0
    overlap_efficiency: float = 0.92
    pipeline_microbatches: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.base_mfu <= 1.0:
            raise ValueError(f"base_mfu must be in (0, 1], got {self.base_mfu}")
        if self.kernel_overhead < 0:
            raise ValueError("kernel_overhead must be non-negative")
        if self.link_ramp_bytes < 0:
            raise ValueError("link_ramp_bytes must be non-negative")
        if not 0.0 < self.overlap_efficiency <= 1.0:
            raise ValueError(
                f"overlap_efficiency must be in (0, 1], got {self.overlap_efficiency}")
        if self.pipeline_microbatches < 1:
            raise ValueError("pipeline_microbatches must be >= 1")
