"""Computation-latency model.

Computation time on a die is its assigned FLOPs divided by the sustained
throughput (peak FLOPS times an achievable MFU), plus a fixed overhead per
kernel launch. Fine-grained partitioning (high TATP degrees, deep pipelines)
multiplies the number of launches, which is what produces the "fragmented
workload" utilisation loss of the paper's sweet-spot analysis (Fig. 9).
"""

from __future__ import annotations

from repro.hardware.config import ComputeDieConfig
from repro.simulation.config import SimulatorConfig


def kernel_launches(
    num_layers: int,
    operators_per_layer: int,
    tatp_rounds: int,
) -> float:
    """Number of kernel launches per training step on one die.

    Every operator of every layer launches once for the forward and once for
    the backward pass (folded into ``operators_per_layer``); TATP splits each
    of its streamed GEMM stages into one launch per round.
    """
    if num_layers < 0 or operators_per_layer < 0:
        raise ValueError("layer and operator counts must be non-negative")
    rounds = max(1, tatp_rounds)
    return float(num_layers) * operators_per_layer * rounds


def compute_time(
    flops: float,
    die: ComputeDieConfig,
    config: SimulatorConfig,
    num_layers: int = 1,
    tatp_rounds: int = 0,
    peak_flops_override: float = 0.0,
) -> float:
    """Time for one die to execute ``flops`` of one training step.

    Args:
        flops: FLOPs assigned to the die for the step.
        die: the die configuration (peak FLOPS).
        config: simulator efficiency knobs.
        num_layers: transformer layers the die processes (for launch counting).
        tatp_rounds: TATP rounds per layer (0 or 1 when TATP is inactive).
        peak_flops_override: effective peak FLOPS after fault derating; 0 means
            use the configured peak.

    Returns:
        Computation time in seconds.
    """
    if flops < 0:
        raise ValueError(f"flops must be non-negative, got {flops}")
    peak = peak_flops_override if peak_flops_override > 0 else die.peak_flops
    sustained = peak * config.base_mfu
    if sustained <= 0:
        raise ValueError("sustained FLOPS must be positive")
    launches = kernel_launches(num_layers, config.operators_per_layer, tatp_rounds)
    return flops / sustained + launches * config.kernel_overhead


def compute_utilization(
    flops: float,
    elapsed: float,
    die: ComputeDieConfig,
    num_dies: int = 1,
) -> float:
    """Achieved fraction of peak FLOPS over ``elapsed`` seconds."""
    if elapsed <= 0:
        return 0.0
    peak = die.peak_flops * num_dies
    if peak <= 0:
        return 0.0
    return min(1.0, flops / (elapsed * peak))
