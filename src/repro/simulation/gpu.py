"""GPU-cluster simulator for the Fig. 15 comparison.

The cluster executes the same execution plans as the wafer, but its
interconnect is switch-based: any logical ring is physically realisable, so
there are no hop factors or mesh contention, and the collective times follow
the standard ring formulas over NVLink (intra-node) or InfiniBand
(inter-node). Compute uses the A100 peak with the same MFU assumption as the
wafer so the comparison isolates the interconnect and parallelism effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hardware.gpu_cluster import GPUCluster
from repro.parallelism.comm import CollectiveType, CommTask
from repro.parallelism.strategies import ExecutionPlan
from repro.simulation.config import SimulatorConfig
from repro.workloads.training import MemoryFootprint


@dataclass
class GPUSimulationReport:
    """Metrics of one training step on the GPU cluster."""

    model_name: str
    spec_label: str
    compute_time: float
    comm_time: float
    step_time: float
    memory: MemoryFootprint
    oom: bool
    throughput: float

    def breakdown(self) -> Dict[str, float]:
        """Latency breakdown matching Fig. 15's bars."""
        return {"compute": self.compute_time, "communication": self.comm_time}


class GPUClusterSimulator:
    """Analytical simulator of LLM training steps on a GPU cluster."""

    def __init__(
        self,
        cluster: Optional[GPUCluster] = None,
        config: Optional[SimulatorConfig] = None,
    ) -> None:
        self.cluster = cluster or GPUCluster()
        self.config = config or SimulatorConfig()

    def simulate(self, plan: ExecutionPlan) -> GPUSimulationReport:
        """Simulate one training step of ``plan`` on the cluster."""
        device = self.cluster.config.device
        sustained = device.peak_flops * self.config.base_mfu
        compute_time = plan.flops_per_device / sustained

        comm_time = 0.0
        for task in plan.comm_tasks:
            comm_time += self._task_time(task) * task.count
        overlap_time = sum(
            self._task_time(task) * task.count for task in plan.overlap_tasks)
        exposed = max(0.0, overlap_time - compute_time * self.config.overlap_efficiency)

        step_time = compute_time + comm_time + exposed
        memory = plan.memory
        oom = memory.total > device.memory_capacity
        throughput = plan.model.tokens_per_batch / step_time if step_time > 0 else 0.0
        return GPUSimulationReport(
            model_name=plan.model.name,
            spec_label=plan.spec.label(),
            compute_time=compute_time,
            comm_time=comm_time + exposed,
            step_time=step_time,
            memory=memory,
            oom=oom,
            throughput=throughput,
        )

    def _task_time(self, task: CommTask) -> float:
        """Time of one execution of a communication task on the cluster."""
        if task.is_trivial:
            return 0.0
        group = task.group_size
        per_node = self.cluster.config.gpus_per_node
        cross_node = group > per_node
        if cross_node:
            bandwidth = self.cluster.config.internode_bandwidth
            latency = self.cluster.config.internode_latency
        else:
            bandwidth = self.cluster.config.device.nvlink_bandwidth
            latency = self.cluster.config.device.nvlink_latency
        if task.kind is CollectiveType.ALL_REDUCE:
            steps = 2 * (group - 1)
        elif task.kind in (CollectiveType.ALL_GATHER, CollectiveType.REDUCE_SCATTER,
                           CollectiveType.BROADCAST, CollectiveType.STREAM):
            steps = group - 1
        else:
            steps = 1
        return steps * latency + task.bytes_per_device / bandwidth
