"""HBM occupancy and DRAM-traffic models (the Ramulator role).

Memory has two jobs in the evaluation:

* **capacity** — a configuration whose per-die footprint exceeds the 72 GB HBM
  capacity is an OOM failure (the OOM bars of Fig. 13),
* **traffic** — DRAM accesses cost energy (6 pJ/bit) and appear in the power
  breakdown of Fig. 14; traffic is estimated from the tensors each training
  step must read and write.
"""

from __future__ import annotations


from repro.hardware.config import ComputeDieConfig
from repro.parallelism.strategies import ExecutionPlan
from repro.workloads.training import MemoryFootprint


def fits_in_memory(
    footprint: MemoryFootprint, die: ComputeDieConfig, slack: float = 1.0
) -> bool:
    """Whether a per-die footprint fits in the die's HBM capacity.

    Args:
        footprint: per-die memory footprint.
        die: die configuration (HBM capacity).
        slack: fraction of the capacity that may be used (1.0 = all of it);
            frameworks usually keep a small reserve for workspace buffers.
    """
    if not 0.0 < slack <= 1.0:
        raise ValueError(f"slack must be in (0, 1], got {slack}")
    return footprint.total <= die.hbm.capacity * slack


def memory_pressure(footprint: MemoryFootprint, die: ComputeDieConfig) -> float:
    """Ratio of the footprint to the HBM capacity (>1 means OOM)."""
    if die.hbm.capacity <= 0:
        raise ValueError("die HBM capacity must be positive")
    return footprint.total / die.hbm.capacity


def dram_traffic_bytes(plan: ExecutionPlan) -> float:
    """Estimated per-die DRAM traffic of one training step, in bytes.

    The estimate counts, per device:

    * reading the weight shard for the forward and backward passes and writing
      the gradient shard (3x the weight shard),
    * writing the forward activations and reading them back during the
      backward pass (2x the activation footprint),
    * reading and writing the optimizer state once during the update
      (2x the optimizer shard),
    * re-streaming communication buffers that pass through HBM (the wire
      bytes of the step).
    """
    memory = plan.memory
    weight_traffic = 3.0 * memory.weights
    activation_traffic = 2.0 * memory.activations
    optimizer_traffic = 2.0 * memory.optimizer + memory.gradients
    comm_staging = plan.total_comm_bytes()
    return weight_traffic + activation_traffic + optimizer_traffic + comm_staging


def hbm_time(traffic_bytes: float, die: ComputeDieConfig) -> float:
    """Time to move ``traffic_bytes`` through the die's HBM interface."""
    if traffic_bytes < 0:
        raise ValueError(f"traffic_bytes must be non-negative, got {traffic_bytes}")
    return die.hbm.access_time(traffic_bytes)
