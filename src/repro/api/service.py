"""The plan-service facade of the Scenario API.

:class:`PlanService` is the one front door to the framework's evaluation
paths: it owns the shared :class:`~repro.costmodel.tables.PlanCache`, caches
resolved wafers per hardware spec, and dispatches a
:class:`~repro.api.scenario.Scenario` to the single-wafer search, the
pinned-spec simulation, the multi-wafer (pipelined) search, the
fault-tolerance evaluation, or the GPU comparator cluster.

``evaluate`` returns a :class:`PlanResult` — a flat, JSON-serializable record
with one stable schema across all paths (fields a path does not produce hold
zeros / ``None``). ``evaluate_raw`` returns the underlying rich result object
(:class:`~repro.core.framework.BaselineResult`,
:class:`~repro.core.multiwafer.MultiWaferResult`, ...) for callers that need
simulation reports or :class:`~repro.parallelism.spec.ParallelSpec` objects.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Tuple, Union

from repro.api.scenario import SCHEMA_VERSION, HardwareSpec, Scenario, ScenarioError
from repro.core.fault_tolerance import FaultToleranceResult, evaluate_with_faults
from repro.core.framework import (
    BaselineResult,
    run_baseline_scenario,
    scheme_max_tp,
    simulate_fixed_spec,
)
from repro.core.multiwafer import MultiWaferResult, run_multiwafer_scenario
from repro.costmodel.tables import PlanCache
from repro.hardware.gpu_cluster import GPUCluster
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import span, tracing_enabled
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.baselines import candidate_specs
from repro.simulation.config import SimulatorConfig
from repro.simulation.gpu import GPUClusterSimulator
from repro.solver.dlws import DualLevelWaferSolver, SolverResult
from repro.solver.genetic import GeneticConfig

_GB = 1024 ** 3

#: Result kinds a :class:`PlanResult` can carry.
RESULT_KINDS = ("single_wafer", "fixed_spec", "multi_wafer", "fault",
                "gpu_cluster")


def _serializable_fields(result) -> Dict[str, object]:
    """A result dataclass as a plain dict; non-finite floats become ``None``.

    Single home of the strict-JSON serialisation rule shared by
    :meth:`PlanResult.to_dict` and :meth:`SolverOutcome.to_dict`.
    """
    payload: Dict[str, object] = {}
    for result_field in fields(result):
        value = getattr(result, result_field.name)
        if isinstance(value, float) and not math.isfinite(value):
            value = None
        payload[result_field.name] = value
    return payload


@dataclass(frozen=True)
class PlanResult:
    """Flat, serializable outcome of ``PlanService.evaluate``.

    Times are seconds, memory is GiB, throughput is tokens/second, power is
    watts, energy is joules per training step. ``step_time`` may be
    ``inf`` when no configuration produced a report; :meth:`to_dict`
    serialises non-finite floats as ``None`` (strict JSON).
    """

    kind: str
    model: str
    scheme: str
    engine: str
    spec: Optional[str]
    oom: bool
    step_time: float
    compute_time: float
    comm_time: float
    bubble_time: float
    memory_gb: float
    throughput: float
    compute_utilization: float
    bandwidth_utilization: float
    compute_watts: float
    dram_watts: float
    comm_watts: float
    total_watts: float
    energy_per_step: float
    power_efficiency: float
    candidates_evaluated: int
    num_wafers: int = 1
    pp_degree: int = 0
    relative_throughput: Optional[float] = None
    schema_version: int = SCHEMA_VERSION

    # Per-request stage timings, attached by PlanService.evaluate when
    # tracing is enabled. Deliberately an un-annotated class attribute —
    # NOT a dataclass field — so to_dict() payloads, the exact-field-set
    # schema check, and cross-path bit-identity are untouched.
    telemetry = None

    @property
    def label(self) -> str:
        """Readable system label like "mesp+gmap"."""
        return f"{self.scheme}+{self.engine}"

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON dict (non-finite floats become ``None``)."""
        return _serializable_fields(self)

    # Builders --------------------------------------------------------------------

    @classmethod
    def from_baseline(cls, result: BaselineResult,
                      kind: str = "single_wafer") -> "PlanResult":
        """Wrap a single-wafer (or fixed-spec) search result."""
        report = result.report
        power = report.power if report else None
        step_time = report.step_time if report else float("inf")
        return cls(
            kind=kind,
            model=result.model.name,
            scheme=result.scheme.value,
            engine=result.engine,
            spec=result.best_spec.label() if result.best_spec else None,
            oom=result.oom,
            step_time=step_time,
            compute_time=report.compute_time if report else 0.0,
            comm_time=report.total_comm_time if report else 0.0,
            bubble_time=report.bubble_time if report else 0.0,
            memory_gb=report.memory.total / _GB if report else 0.0,
            throughput=report.throughput if report else 0.0,
            compute_utilization=report.compute_utilization if report else 0.0,
            bandwidth_utilization=(
                report.bandwidth_utilization if report else 0.0),
            compute_watts=power.compute if power else 0.0,
            dram_watts=power.dram if power else 0.0,
            comm_watts=power.communication if power else 0.0,
            total_watts=power.total if power else 0.0,
            energy_per_step=(
                power.total * step_time
                if power and math.isfinite(step_time) else 0.0),
            power_efficiency=report.power_efficiency if report else 0.0,
            candidates_evaluated=result.candidates_evaluated,
            pp_degree=result.best_spec.pp if result.best_spec else 0,
        )

    @classmethod
    def from_multiwafer(cls, result: MultiWaferResult) -> "PlanResult":
        """Wrap a multi-wafer (pipelined) search result."""
        report = result.report
        power = report.power if report else None
        return cls(
            kind="multi_wafer",
            model=result.model.name,
            scheme=result.scheme.value,
            engine=result.engine,
            spec=result.best_spec.label() if result.best_spec else None,
            oom=result.oom,
            step_time=result.step_time,
            compute_time=result.compute_time,
            comm_time=result.comm_time,
            bubble_time=result.bubble_time,
            memory_gb=report.memory.total / _GB if report else 0.0,
            throughput=result.throughput,
            compute_utilization=report.compute_utilization if report else 0.0,
            bandwidth_utilization=(
                report.bandwidth_utilization if report else 0.0),
            compute_watts=power.compute if power else 0.0,
            dram_watts=power.dram if power else 0.0,
            comm_watts=power.communication if power else 0.0,
            total_watts=power.total if power else 0.0,
            energy_per_step=(
                power.total * result.step_time if power else 0.0),
            power_efficiency=report.power_efficiency if report else 0.0,
            candidates_evaluated=1,
            num_wafers=result.num_wafers,
            pp_degree=result.best_spec.pp if result.best_spec else 0,
        )

    @classmethod
    def from_fault(cls, result: FaultToleranceResult, engine: str,
                   scheme: str) -> "PlanResult":
        """Wrap a fault-tolerance evaluation."""
        report = result.report
        power = report.power
        return cls(
            kind="fault",
            model=result.model.name,
            scheme=scheme,
            engine=engine,
            spec=result.spec.label(),
            oom=report.oom,
            step_time=report.step_time,
            compute_time=report.compute_time,
            comm_time=report.total_comm_time,
            bubble_time=report.bubble_time,
            memory_gb=report.memory.total / _GB,
            throughput=result.faulty_throughput,
            compute_utilization=report.compute_utilization,
            bandwidth_utilization=report.bandwidth_utilization,
            compute_watts=power.compute,
            dram_watts=power.dram,
            comm_watts=power.communication,
            total_watts=power.total,
            energy_per_step=power.total * report.step_time,
            power_efficiency=report.power_efficiency,
            candidates_evaluated=1,
            relative_throughput=result.relative_throughput,
        )

    @classmethod
    def from_gpu(cls, model_name: str, scheme: str, engine: str,
                 step_time: float, throughput: float,
                 candidates_evaluated: int) -> "PlanResult":
        """Wrap a GPU-cluster comparator evaluation."""
        return cls(
            kind="gpu_cluster",
            model=model_name,
            scheme=scheme,
            engine=engine,
            spec=None,
            oom=not math.isfinite(step_time),
            step_time=step_time,
            compute_time=0.0,
            comm_time=0.0,
            bubble_time=0.0,
            memory_gb=0.0,
            throughput=throughput,
            compute_utilization=0.0,
            bandwidth_utilization=0.0,
            compute_watts=0.0,
            dram_watts=0.0,
            comm_watts=0.0,
            total_watts=0.0,
            energy_per_step=0.0,
            power_efficiency=0.0,
            candidates_evaluated=candidates_evaluated,
        )


@dataclass(frozen=True)
class SolverOutcome:
    """Flat, serializable outcome of ``PlanService.solve``."""

    model: str
    spec: Optional[str]
    oom: bool
    step_time: float
    throughput: float
    candidates_considered: int
    finalists_simulated: int
    dp_cost: float
    ga_cost: float
    evaluations: int
    search_seconds: float
    plan_cache_hits: int
    plan_cache_misses: int
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON dict (non-finite floats become ``None``)."""
        return _serializable_fields(self)

    @classmethod
    def from_result(cls, result: SolverResult) -> "SolverOutcome":
        """Wrap a :class:`~repro.solver.dlws.SolverResult`."""
        report = result.best_report
        return cls(
            model=result.model.name,
            spec=result.best_spec.label() if result.best_spec else None,
            oom=report.oom if report else True,
            step_time=report.step_time if report else float("inf"),
            throughput=report.throughput if report else 0.0,
            candidates_considered=result.candidates_considered,
            finalists_simulated=result.finalists_simulated,
            dp_cost=result.dp_cost,
            ga_cost=result.ga_cost,
            evaluations=result.evaluations,
            search_seconds=result.search_seconds,
            plan_cache_hits=result.plan_cache_hits,
            plan_cache_misses=result.plan_cache_misses,
        )


#: Union of rich result types ``evaluate_raw`` can return.
RawResult = Union[BaselineResult, MultiWaferResult, FaultToleranceResult,
                  PlanResult]


class PlanService:
    """Facade dispatching scenarios to the framework's evaluation paths.

    One service instance owns one :class:`PlanCache`, so every scenario it
    evaluates shares memoised ``analyze_model`` results — the same sharing
    the sweep orchestrator gives each worker. The cache is pure memoisation:
    results are bit-identical with a private or a shared service.
    """

    def __init__(self, plan_cache: Optional[PlanCache] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._evaluations = self.registry.counter(
            "service.evaluations", help="PlanService.evaluate calls")
        self._evaluate_hist = self.registry.histogram(
            "service.evaluate_seconds",
            help="end-to-end PlanService.evaluate latency")
        self._wafers: Dict[Tuple, WaferScaleChip] = {}

    def stats(self) -> Dict[str, object]:
        """Plain-JSON service counters.

        ``plan_cache`` is :meth:`PlanCache.stats` (hit/miss/size),
        ``wafers_cached`` the number of distinct hardware geometries
        resolved. Surfaced by ``repro plan --stats`` and the plan server's
        ``GET /metrics``.
        """
        return {
            "plan_cache": self.plan_cache.stats(),
            "wafers_cached": len(self._wafers),
        }

    # Batching hooks ---------------------------------------------------------------
    # Overridden by repro.costmodel.portfolio.BatchedPlanService to share
    # simulation reports and cost tables across the points of a portfolio.
    # The base service never batches, so both return None.

    def _report_cache_for(self, scenario: Scenario):
        """Optional report memo for the single-wafer search paths."""
        return None

    def _tables_provider_for(self, scenario: Scenario):
        """Optional ``CostTables`` provider for the dual-level solver."""
        return None

    # Resolution caches ------------------------------------------------------------

    def wafer_for(self, hardware: HardwareSpec) -> WaferScaleChip:
        """A healthy wafer for ``hardware``, built once per geometry + fabric."""
        topology = (json.dumps(hardware.topology, sort_keys=True)
                    if hardware.topology is not None else None)
        key = (hardware.rows, hardware.cols, hardware.d2d_bandwidth,
               hardware.hbm_capacity, topology)
        wafer = self._wafers.get(key)
        if wafer is None:
            wafer = hardware.resolve_wafer()
            self._wafers[key] = wafer
        return wafer

    # Entry points ----------------------------------------------------------------

    def evaluate(
        self,
        scenario: Scenario,
        wafer: Optional[WaferScaleChip] = None,
        config: Optional[SimulatorConfig] = None,
    ) -> PlanResult:
        """Evaluate ``scenario`` and return the flat :class:`PlanResult`.

        With tracing enabled the result additionally carries a
        ``telemetry`` attribute — ``{"evaluate_seconds", "stages"}`` with
        the wall time of each direct child stage span (candidate search,
        simulation, solver levels). It is not a dataclass field: the
        serialized payload stays bit-identical either way.
        """
        start = time.perf_counter()
        with span("service.evaluate",
                  model=scenario.workload.model) as evaluate_span:
            raw = self.evaluate_raw(scenario, wafer=wafer, config=config)
            if isinstance(raw, PlanResult):
                result = raw
            elif isinstance(raw, MultiWaferResult):
                result = PlanResult.from_multiwafer(raw)
            elif isinstance(raw, FaultToleranceResult):
                result = PlanResult.from_fault(
                    raw, engine=scenario.solver.engine,
                    scheme=scenario.solver.scheme)
            else:
                kind = ("fixed_spec"
                        if scenario.solver.fixed_spec is not None
                        else "single_wafer")
                result = PlanResult.from_baseline(raw, kind=kind)
        elapsed = time.perf_counter() - start
        self._evaluations.inc()
        self._evaluate_hist.observe(elapsed)
        if tracing_enabled():
            # object.__setattr__: PlanResult is frozen, and telemetry is a
            # per-instance annotation, not part of the result value.
            object.__setattr__(result, "telemetry", {
                "evaluate_seconds": round(elapsed, 9),
                "stages": {name: round(seconds, 9) for name, seconds
                           in sorted(evaluate_span.stages.items())},
            })
        return result

    def evaluate_raw(
        self,
        scenario: Scenario,
        wafer: Optional[WaferScaleChip] = None,
        config: Optional[SimulatorConfig] = None,
    ) -> RawResult:
        """Evaluate ``scenario`` and return the path's rich result object.

        ``wafer`` / ``config`` are internal overrides for callers that
        already hold the (identical) resolved objects; they default to what
        the scenario's hardware spec resolves to.
        """
        hardware = scenario.hardware
        if hardware.platform == "gpu_cluster":
            return self._evaluate_gpu(scenario, config=config)
        if hardware.num_wafers > 1:
            return run_multiwafer_scenario(scenario,
                                           plan_cache=self.plan_cache)
        if hardware.has_fault_study:
            return self._evaluate_faults(scenario, config=config)
        wafer = wafer if wafer is not None else self.wafer_for(hardware)
        config = config if config is not None else hardware.resolve_simulator()
        report_cache = self._report_cache_for(scenario)
        if scenario.solver.fixed_spec is not None:
            return simulate_fixed_spec(
                scenario, plan_cache=self.plan_cache, wafer=wafer,
                config=config, report_cache=report_cache)
        return run_baseline_scenario(
            scenario, plan_cache=self.plan_cache, wafer=wafer, config=config,
            report_cache=report_cache)

    def solve(self, scenario: Scenario) -> SolverOutcome:
        """Run the dual-level solver on ``scenario`` (flat outcome)."""
        return SolverOutcome.from_result(self.solve_raw(scenario))

    def solve_raw(self, scenario: Scenario) -> SolverResult:
        """Run the dual-level solver and return the rich result."""
        if scenario.hardware.platform != "wafer":
            raise ScenarioError(
                "the dual-level solver only runs on the wafer platform")
        with span("service.solve", model=scenario.workload.model):
            return self._solve_raw(scenario)

    def _solve_raw(self, scenario: Scenario) -> SolverResult:
        solver_spec = scenario.solver
        genetic_config = None
        if solver_spec.ga_generations is not None:
            genetic_config = GeneticConfig(
                generations=solver_spec.ga_generations)
        solver = DualLevelWaferSolver(
            wafer=self.wafer_for(scenario.hardware),
            config=scenario.hardware.resolve_simulator(),
            genetic_config=genetic_config,
            num_finalists=solver_spec.num_finalists,
            mapping_engine=solver_spec.engine,
            tables_provider=self._tables_provider_for(scenario),
        )
        return solver.solve(
            scenario.workload.resolve(),
            scheme=solver_spec.resolved_scheme(),
            max_tatp=solver_spec.max_tatp,
            pipeline_degrees=solver_spec.pipeline_degrees,
        )

    # Dispatch targets -------------------------------------------------------------

    def _evaluate_faults(
        self, scenario: Scenario, config: Optional[SimulatorConfig] = None
    ) -> FaultToleranceResult:
        """Fault-tolerance path: pinned spec on a healthy vs faulty wafer."""
        solver = scenario.solver
        if solver.fixed_spec is None:
            raise ScenarioError(
                "fault-tolerance scenarios need solver.fixed_spec (the "
                "configuration to stress) — the fault path does not search")
        fault_model = scenario.hardware.resolve_fault_model(seed=solver.seed)
        return evaluate_with_faults(
            scenario.workload.resolve(),
            solver.resolve_fixed_spec(),
            fault_model,
            config=(config if config is not None
                    else scenario.hardware.resolve_simulator()),
            engine=solver.engine,
            wafer_config=scenario.hardware.resolve_config(),
        )

    def _evaluate_gpu(
        self, scenario: Scenario, config: Optional[SimulatorConfig] = None
    ) -> PlanResult:
        """GPU comparator path: best non-OOM configuration on the cluster."""
        model = scenario.workload.resolve()
        solver = scenario.solver
        scheme = solver.resolved_scheme()
        cluster = GPUCluster()
        simulator = GPUClusterSimulator(
            cluster,
            config if config is not None
            else scenario.hardware.resolve_simulator())
        num_devices = cluster.num_devices
        specs = candidate_specs(
            scheme, num_devices, max_tp=scheme_max_tp(scheme, model),
            max_tatp=solver.max_tatp)
        best_time = float("inf")
        best_throughput = 0.0
        for spec in specs:
            plan = self.plan_cache.analyze(model, spec,
                                           num_devices=num_devices)
            report = simulator.simulate(plan)
            if report.oom:
                checkpointed = self.plan_cache.analyze(
                    model, spec, num_devices=num_devices,
                    activation_checkpointing=True)
                report = simulator.simulate(checkpointed)
                if report.oom:
                    continue
            if report.step_time < best_time:
                best_time = report.step_time
                best_throughput = report.throughput
        return PlanResult.from_gpu(
            model_name=model.name,
            scheme=solver.scheme,
            engine=solver.engine,
            step_time=best_time,
            throughput=best_throughput,
            candidates_evaluated=len(specs),
        )


def validate_result_payload(payload: Dict[str, object]) -> List[str]:
    """Schema-check one serialized :class:`PlanResult` document.

    Used by ``repro plan --validate`` and the CI smoke step: verifies the
    payload carries exactly the PlanResult fields, a supported
    ``schema_version``, a known ``kind``, and only finite (or null) numbers.

    Returns:
        A list of human-readable problems; empty when the payload is valid.
    """
    problems: List[str] = []
    expected = {result_field.name for result_field in fields(PlanResult)}
    missing = expected - set(payload)
    extra = set(payload) - expected
    if missing:
        problems.append(f"missing result keys: {', '.join(sorted(missing))}")
    if extra:
        problems.append(f"unexpected result keys: {', '.join(sorted(extra))}")
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        problems.append(
            f"result schema_version {version!r} != {SCHEMA_VERSION}")
    kind = payload.get("kind")
    if "kind" in payload and kind not in RESULT_KINDS:
        problems.append(
            f"unknown result kind {kind!r}; expected one of "
            f"{', '.join(RESULT_KINDS)}")
    for key, value in payload.items():
        if isinstance(value, float) and not math.isfinite(value):
            problems.append(f"non-finite value for {key!r}")
    return problems
