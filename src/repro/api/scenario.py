"""The typed, serializable plan-request tree of the Scenario API.

A :class:`Scenario` is the one request shape every entry point of the
framework speaks: the runner's cell runners, the ``repro plan`` CLI, and any
future server front-end all construct a Scenario and hand it to
:class:`repro.api.service.PlanService`. It is a frozen dataclass tree —

* :class:`WorkloadSpec` — what is being trained (a model-zoo name or inline
  hyper-parameters, plus batch/sequence/depth overrides),
* :class:`HardwareSpec` — what it runs on (wafer geometry and bandwidth
  overrides, multi-wafer and fault knobs, or the GPU comparator cluster),
* :class:`SolverSpec` — how the configuration is chosen (partitioning
  scheme, mapping engine, search caps, ablation switches, or a pinned
  parallel spec that skips the search entirely)

— with a strict ``to_dict``/``from_dict``/JSON round-trip: unknown keys are
rejected, ``schema_version`` mismatches raise, and
``Scenario.from_dict(s.to_dict()) == s`` holds for every scenario (pinned
over all registered experiment grids in ``tests/api/test_scenario.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.hardware.config import WaferConfig, default_wafer_config
from repro.hardware.faults import FaultModel
from repro.hardware.topologies import (
    DEFAULT_TOPOLOGY,
    Topology,
    build_topology,
    validate_topology_spec,
)
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.baselines import BaselineScheme
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.workloads.models import ModelConfig, get_model

#: Version of the serialized scenario format. Bump on incompatible changes;
#: :func:`Scenario.from_dict` rejects documents of any other version.
SCHEMA_VERSION = 1


class ScenarioError(ValueError):
    """A scenario document or field is invalid."""


@dataclass(frozen=True)
class WorkloadSpec:
    """What is being trained.

    Exactly one of ``model`` (a model-zoo name, see
    :func:`repro.workloads.models.list_models`) or ``hyperparams`` (inline
    :class:`~repro.workloads.models.ModelConfig` fields, see
    :meth:`ModelConfig.from_dict`) must be set before :meth:`resolve` is
    called; the batch/sequence/depth overrides apply on top of either.
    """

    model: Optional[str] = None
    hyperparams: Optional[Mapping[str, object]] = None
    batch_size: Optional[int] = None
    seq_length: Optional[int] = None
    num_layers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.hyperparams is not None:
            object.__setattr__(self, "hyperparams", dict(self.hyperparams))

    def resolve(self) -> ModelConfig:
        """Build the concrete :class:`ModelConfig` this spec describes."""
        if (self.model is None) == (self.hyperparams is None):
            raise ScenarioError(
                "workload needs exactly one of 'model' (zoo name) or "
                "'hyperparams' (inline ModelConfig fields)")
        if self.model is not None:
            try:
                base = get_model(self.model)
            except KeyError as error:
                raise ScenarioError(str(error.args[0])) from None
        else:
            try:
                base = ModelConfig.from_dict(self.hyperparams)
            except (TypeError, ValueError) as error:
                raise ScenarioError(f"invalid inline workload: {error}") from None
        return base.with_overrides(
            batch_size=self.batch_size,
            seq_length=self.seq_length,
            num_layers=self.num_layers,
        )


@dataclass(frozen=True)
class HardwareSpec:
    """What the workload runs on.

    Attributes:
        platform: ``"wafer"`` (the default wafer-scale chip) or
            ``"gpu_cluster"`` (the Fig. 15 A100 comparator).
        rows / cols: die grid geometry (Table I evaluates 4x8).
        d2d_bandwidth: optional per-link D2D bandwidth override in bytes/s.
        hbm_capacity: optional per-die HBM capacity override in bytes.
        base_mfu: optional sustained-MFU override of the simulator (the
            power/efficiency knob of :class:`SimulatorConfig`).
        num_wafers: >1 dispatches to the multi-wafer (pipelined) path.
        num_microbatches: pipeline microbatches of the multi-wafer path.
        link_fault_rate / core_fault_rate: when not ``None``, the scenario is
            a fault-tolerance evaluation at that rate (0.0 is a valid rate:
            the fault path runs with an empty fault model). Faults are
            sampled deterministically from the solver's ``seed``.
        topology: optional interconnect-fabric spec dict
            (``{"name": ..., **params}``, see
            :mod:`repro.hardware.topologies`). ``None`` means the default
            mesh; an explicit ``{"name": "mesh"}`` is equivalent but
            cache-key distinct. Non-mesh fabrics are single-wafer only and
            cannot be combined with fault injection (those paths model the
            mesh fabric).
    """

    platform: str = "wafer"
    rows: int = 4
    cols: int = 8
    d2d_bandwidth: Optional[float] = None
    hbm_capacity: Optional[float] = None
    base_mfu: Optional[float] = None
    num_wafers: int = 1
    num_microbatches: int = 16
    link_fault_rate: Optional[float] = None
    core_fault_rate: Optional[float] = None
    topology: Optional[Mapping[str, object]] = None

    def __post_init__(self) -> None:
        if self.platform not in ("wafer", "gpu_cluster"):
            raise ScenarioError(
                f"platform must be 'wafer' or 'gpu_cluster', got "
                f"{self.platform!r}")
        if self.rows < 1 or self.cols < 1:
            raise ScenarioError(
                f"die grid must be positive, got {self.rows}x{self.cols}")
        if self.topology is not None:
            object.__setattr__(self, "topology", dict(self.topology))
            try:
                validate_topology_spec(self.topology, self.rows, self.cols)
            except ValueError as error:
                raise ScenarioError(f"invalid topology: {error}") from None
        if self.num_wafers < 1:
            raise ScenarioError(f"num_wafers must be >= 1, got {self.num_wafers}")
        if self.num_microbatches < 1:
            raise ScenarioError("num_microbatches must be >= 1")
        for name in ("link_fault_rate", "core_fault_rate"):
            rate = getattr(self, name)
            if rate is not None and not 0.0 <= rate <= 1.0:
                raise ScenarioError(f"{name} must be in [0, 1], got {rate}")
        # The evaluation paths are mutually exclusive: reject combinations no
        # dispatch target implements rather than silently dropping a knob.
        if self.platform == "gpu_cluster":
            if self.num_wafers > 1:
                raise ScenarioError(
                    "the gpu_cluster platform has no multi-wafer path; "
                    "set num_wafers=1")
            if self.link_fault_rate is not None or self.core_fault_rate is not None:
                raise ScenarioError(
                    "fault injection is only modelled on the wafer platform")
            if self.topology is not None:
                raise ScenarioError(
                    "topology describes the wafer fabric and does not apply "
                    "to the gpu_cluster comparator")
            defaults = HardwareSpec.__dataclass_fields__
            if ((self.rows, self.cols) != (defaults["rows"].default,
                                           defaults["cols"].default)
                    or self.d2d_bandwidth is not None
                    or self.hbm_capacity is not None):
                raise ScenarioError(
                    "rows/cols/d2d_bandwidth/hbm_capacity describe the wafer "
                    "and are not applied to the gpu_cluster comparator; "
                    "leave them at their defaults")
        elif self.num_wafers > 1 and (self.link_fault_rate is not None
                                      or self.core_fault_rate is not None):
            raise ScenarioError(
                "fault injection on multi-wafer systems is not modelled; "
                "use num_wafers=1 for fault studies")
        # The multi-wafer and fault paths build their wafers internally and
        # model the mesh fabric; only allow non-mesh topologies where the
        # fabric actually threads through (the single-wafer paths).
        if (self.topology is not None
                and self.topology.get("name") != DEFAULT_TOPOLOGY):
            if self.num_wafers > 1:
                raise ScenarioError(
                    "non-mesh topologies are single-wafer only; the "
                    "multi-wafer path models mesh wafers")
            if self.has_fault_study:
                raise ScenarioError(
                    "fault injection is only modelled on the mesh fabric; "
                    "drop the fault rates or use the mesh topology")

    @property
    def has_fault_study(self) -> bool:
        """Whether this scenario asks for the fault-tolerance path."""
        return self.link_fault_rate is not None or self.core_fault_rate is not None

    @property
    def num_dies(self) -> int:
        """Dies per wafer."""
        return self.rows * self.cols

    def resolve_config(self) -> WaferConfig:
        """The :class:`WaferConfig` (geometry + overrides) of one wafer."""
        return default_wafer_config(
            rows=self.rows, cols=self.cols,
            d2d_bandwidth=self.d2d_bandwidth,
            hbm_capacity=self.hbm_capacity,
        )

    def resolve_wafer(self) -> WaferScaleChip:
        """A healthy wafer built from :meth:`resolve_config`."""
        return WaferScaleChip(self.resolve_config(), topology=self.topology)

    def resolve_topology(self) -> "Topology":
        """The healthy interconnect fabric this spec describes."""
        return build_topology(self.topology, self.rows, self.cols)

    def resolve_simulator(self) -> Optional[SimulatorConfig]:
        """Simulator knobs, or ``None`` when the defaults apply unchanged."""
        if self.base_mfu is None:
            return None
        return SimulatorConfig(base_mfu=self.base_mfu)

    def resolve_fault_model(self, seed: int = 0) -> FaultModel:
        """Deterministically sample the fault model this spec describes."""
        model = FaultModel()
        if self.link_fault_rate:
            model = model.merged_with(FaultModel.sample_link_faults(
                self.rows, self.cols, self.link_fault_rate, seed=seed))
        if self.core_fault_rate:
            model = model.merged_with(FaultModel.sample_core_faults(
                self.num_dies, self.core_fault_rate, seed=seed))
        return model


#: Valid keys of :attr:`SolverSpec.fixed_spec` (ParallelSpec fields).
_FIXED_SPEC_KEYS = ("dp", "tp", "sp", "cp", "fsdp", "tatp", "pp",
                    "sp_within_tp", "zero1_optimizer")


@dataclass(frozen=True)
class SolverSpec:
    """How the parallel configuration is chosen.

    Attributes:
        scheme: partitioning scheme (a :class:`BaselineScheme` value:
            ``"temp"``, ``"mesp"``, ``"fsdp"``, ``"megatron1"``).
        engine: mapping engine name (``"tcme"``, ``"gmap"``, ``"smap"``,
            ``"scattered"``); informational for the GPU-cluster platform.
        max_tatp: cap on the TATP degree the search explores.
        pipeline_degrees: pipeline degrees combined with the intra-stage
            space (single-wafer runs keep the default ``(1,)``).
        max_candidates: optional cap on simulated candidates (evenly
            downsampled, endpoints kept).
        num_finalists: finalists the dual-level solver simulates.
        ga_generations: optional genetic-refinement generation override.
        seed: RNG seed for seeded sub-systems (fault sampling, cost-model
            training).
        fixed_spec: when set, the search is skipped and exactly this
            :class:`ParallelSpec` (given as a field dict) is evaluated.
        allow_checkpoint_fallback: retry an OOM fixed-spec evaluation with
            full activation checkpointing before reporting the OOM.
    """

    scheme: str = "temp"
    engine: str = "tcme"
    max_tatp: int = 32
    pipeline_degrees: Tuple[int, ...] = (1,)
    max_candidates: Optional[int] = None
    num_finalists: int = 8
    ga_generations: Optional[int] = None
    seed: int = 0
    fixed_spec: Optional[Mapping[str, object]] = None
    allow_checkpoint_fallback: bool = True

    def __post_init__(self) -> None:
        valid_schemes = tuple(scheme.value for scheme in BaselineScheme)
        if self.scheme not in valid_schemes:
            raise ScenarioError(
                f"unknown scheme {self.scheme!r}; expected one of "
                f"{', '.join(valid_schemes)}")
        if not self.engine or not isinstance(self.engine, str):
            raise ScenarioError(f"engine must be a non-empty string, got "
                                f"{self.engine!r}")
        object.__setattr__(
            self, "pipeline_degrees",
            tuple(int(degree) for degree in self.pipeline_degrees))
        if self.fixed_spec is not None:
            fixed = dict(self.fixed_spec)
            unknown = sorted(set(fixed) - set(_FIXED_SPEC_KEYS))
            if unknown:
                raise ScenarioError(
                    f"unknown fixed_spec keys: {', '.join(unknown)}; valid: "
                    f"{', '.join(_FIXED_SPEC_KEYS)}")
            object.__setattr__(self, "fixed_spec", fixed)

    @classmethod
    def for_framework(
        cls,
        enable_tatp: bool = True,
        enable_tcme: bool = True,
        max_tatp: int = 32,
        pipeline_degrees: Sequence[int] = (1,),
        max_candidates: Optional[int] = None,
    ) -> "SolverSpec":
        """The TEMP framework's solver spec under its two ablation switches.

        This is the single home of the framework's scheme/engine resolution:
        disabling TATP drops the space to FSDP (and pins ``max_tatp`` to 1),
        disabling TCME falls back to the naive sequential mapper.
        """
        return cls(
            scheme=(BaselineScheme.TEMP if enable_tatp
                    else BaselineScheme.FSDP).value,
            engine="tcme" if enable_tcme else "smap",
            max_tatp=max_tatp if enable_tatp else 1,
            pipeline_degrees=tuple(pipeline_degrees),
            max_candidates=max_candidates,
        )

    def resolved_scheme(self) -> BaselineScheme:
        """The scheme as a :class:`BaselineScheme` member."""
        return BaselineScheme(self.scheme)

    def resolve_fixed_spec(self) -> ParallelSpec:
        """The pinned :class:`ParallelSpec` (requires ``fixed_spec``)."""
        if self.fixed_spec is None:
            raise ScenarioError("solver has no fixed_spec to resolve")
        try:
            return ParallelSpec(**self.fixed_spec)
        except (TypeError, ValueError) as error:
            raise ScenarioError(f"invalid fixed_spec: {error}") from None


@dataclass(frozen=True)
class Scenario:
    """One complete plan request: workload + hardware + solver."""

    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    hardware: HardwareSpec = field(default_factory=HardwareSpec)
    solver: SolverSpec = field(default_factory=SolverSpec)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.schema_version != SCHEMA_VERSION:
            raise ScenarioError(
                f"scenario schema_version {self.schema_version!r} is not "
                f"supported; this build speaks version {SCHEMA_VERSION}")

    # Serialization ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON document; inverse of :meth:`from_dict`."""
        return {
            "schema_version": self.schema_version,
            "workload": _section_to_dict(self.workload),
            "hardware": _section_to_dict(self.hardware),
            "solver": _section_to_dict(self.solver),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Scenario":
        """Strictly parse a scenario document.

        Raises:
            ScenarioError: on a non-mapping document, a missing or
                unsupported ``schema_version``, or any unknown key at any
                level. Missing sections (and missing fields inside a
                section) take their defaults.
        """
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"scenario document must be a JSON object, got "
                f"{type(data).__name__}")
        remaining = dict(data)
        if "schema_version" not in remaining:
            raise ScenarioError("scenario document is missing 'schema_version'")
        version = remaining.pop("schema_version")
        if version != SCHEMA_VERSION:
            raise ScenarioError(
                f"scenario schema_version {version!r} is not supported; "
                f"this build speaks version {SCHEMA_VERSION}")
        sections = {
            "workload": WorkloadSpec,
            "hardware": HardwareSpec,
            "solver": SolverSpec,
        }
        kwargs: Dict[str, object] = {}
        for name, section_cls in sections.items():
            raw = remaining.pop(name, None)
            if raw is None:
                continue
            kwargs[name] = _section_from_dict(section_cls, name, raw)
        if remaining:
            raise ScenarioError(
                f"unknown scenario keys: {', '.join(sorted(remaining))}; "
                f"expected schema_version, workload, hardware, solver")
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = None) -> str:
        """The document as a JSON string (sorted keys, strict floats)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a JSON string through :meth:`from_dict`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"invalid scenario JSON: {error}") from None
        return cls.from_dict(data)

    def canonical_json(self) -> str:
        """The canonical serialized form: sorted keys, no whitespace.

        Two scenarios have the same canonical JSON iff they are equal, no
        matter what key order their source documents used — this string is
        what :meth:`cache_key` hashes.
        """
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"), allow_nan=False)

    def cache_key(self) -> str:
        """Stable content hash of this scenario (64 hex chars, SHA-256).

        The key is derived from :meth:`canonical_json`, so it is invariant
        to document key ordering and changes whenever any spec field
        changes. It identifies a scenario across processes and restarts:
        the plan server's dedup map and result store are keyed by it.
        """
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()

    # Convenience -----------------------------------------------------------------

    def with_fixed_spec(self, spec: ParallelSpec) -> "Scenario":
        """A copy of this scenario pinned to one :class:`ParallelSpec`."""
        fixed = {name: value for name, value in spec.as_dict().items()
                 if value > 1}
        if spec.sp_within_tp:
            fixed["sp_within_tp"] = True
        if not spec.zero1_optimizer:
            fixed["zero1_optimizer"] = False
        return replace(self, solver=replace(self.solver, fixed_spec=fixed))

    def describe(self) -> str:
        """Compact one-line summary for logs and CLI output."""
        workload = self.workload.model or "<inline>"
        hardware = f"{self.hardware.rows}x{self.hardware.cols}"
        if self.hardware.num_wafers > 1:
            hardware += f"*{self.hardware.num_wafers}"
        if self.hardware.platform != "wafer":
            hardware = self.hardware.platform
        return (f"{workload} on {hardware} via "
                f"{self.solver.scheme}+{self.solver.engine}")


def _section_to_dict(section) -> Dict[str, object]:
    """One spec dataclass as a plain dict (tuples become lists)."""
    result: Dict[str, object] = {}
    for spec_field in dataclasses.fields(section):
        value = getattr(section, spec_field.name)
        if isinstance(value, tuple):
            value = list(value)
        elif isinstance(value, Mapping):
            value = dict(value)
        result[spec_field.name] = value
    return result


def _section_from_dict(section_cls, name: str, raw) -> object:
    """Strictly build one spec dataclass from its document section."""
    if not isinstance(raw, Mapping):
        raise ScenarioError(
            f"scenario section {name!r} must be an object, got "
            f"{type(raw).__name__}")
    known = {spec_field.name for spec_field in dataclasses.fields(section_cls)}
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ScenarioError(
            f"unknown {name} keys: {', '.join(unknown)}; valid: "
            f"{', '.join(sorted(known))}")
    try:
        return section_cls(**raw)
    except ScenarioError:
        raise
    except (TypeError, ValueError) as error:
        # E.g. a wrong-typed field value ({"rows": "4"}) raising TypeError
        # inside __post_init__ — still a document problem, not a crash.
        raise ScenarioError(f"invalid {name} section: {error}") from None
