"""The typed portfolio spec: named axes over Scenario fields.

A :class:`Portfolio` describes a *family* of scenarios — the shape every
headline result of the paper is computed over (model zoo x wafer geometry x
scheme ablations). It is the request document of the portfolio sweep engine
(:mod:`repro.server.portfolio`, ``POST /v1/portfolio``, ``repro sweep``):

* a ``base`` :class:`~repro.api.scenario.Scenario` carrying everything the
  sweep does not vary,
* a tuple of :class:`PortfolioAxis` — each axis names a list of values and
  (optionally) the spec field they are applied to (``"workload.model"``,
  ``"hardware.rows"``, or a whole section like ``"solver"``),
* an ``expansion`` mode: ``"cartesian"`` (the product of all axes, first
  axis outermost — the expansion order of the experiment registry's dict
  grids) or ``"zip"`` (axes advance together, for grids that are not a full
  product).

:meth:`Portfolio.expand` materialises the ordered list of
:class:`PortfolioPoint` — one ``(params, scenario)`` pair per point, where
``params`` is the manifest-row identity of the point (recorded axis labels)
and ``scenario`` is strictly re-validated through
:meth:`Scenario.from_dict`. Points may repeat a scenario (zipped grids often
do); the sweep engine de-duplicates evaluation via
:meth:`Scenario.cache_key` while every point keeps its own row.

Like the Scenario tree, the document round-trip is strict and lossless:
``Portfolio.from_dict(p.to_dict()) == p``, unknown keys raise
:class:`PortfolioError` (a :class:`ScenarioError`), and malformed documents
never escape as tracebacks.
"""

from __future__ import annotations

import dataclasses
import importlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.api.scenario import (
    SCHEMA_VERSION,
    HardwareSpec,
    Scenario,
    ScenarioError,
    SolverSpec,
    WorkloadSpec,
)

#: Spec sections an axis ``path`` may target.
_SECTIONS = {
    "workload": WorkloadSpec,
    "hardware": HardwareSpec,
    "solver": SolverSpec,
}

#: Module whose import registers the named portfolios (the experiments
#: package re-expresses its grids as portfolios at import time).
_PORTFOLIOS_PACKAGE = "repro.experiments"


class PortfolioError(ScenarioError):
    """A portfolio document, axis, or expansion is invalid."""


def _json_value(value, what: str):
    """``value`` canonicalised through JSON (tuples become lists).

    Axis values live in documents, so they must be strict JSON; passing
    them through a dumps/loads round-trip at construction time both
    validates that and makes ``from_dict(to_dict()) == self`` hold exactly.
    """
    try:
        return json.loads(json.dumps(value, allow_nan=False))
    except (TypeError, ValueError) as error:
        raise PortfolioError(f"{what} is not strict JSON: {error}") from None


@dataclass(frozen=True)
class PortfolioAxis:
    """One named axis of a portfolio.

    Attributes:
        name: axis name; recorded axes contribute ``params[name]`` to every
            point's manifest-row identity.
        values: the axis values, one per step. When ``path`` is set each
            value is applied to the base scenario document at that path;
            values must be strict JSON.
        path: where the values are applied — ``"section.field"`` (e.g.
            ``"workload.model"``) or a whole ``"section"`` (e.g.
            ``"solver"``, whose values must then be section documents).
            ``None`` makes the axis annotation-only: it labels points
            without touching the scenario (e.g. a config label riding along
            a zipped fixed-spec axis).
        labels: optional per-value display labels recorded in ``params``
            instead of the raw values (e.g. ``"TEMP"`` instead of a whole
            solver document). Must match ``values`` in length.
        record: whether the axis contributes to ``params`` at all; set
            ``False`` for mechanical axes (a zipped ``num_wafers`` that is
            a function of the model axis) that would otherwise duplicate
            row columns.
    """

    name: str
    values: Tuple[object, ...] = ()
    path: Optional[str] = None
    labels: Optional[Tuple[object, ...]] = None
    record: bool = True

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise PortfolioError(
                f"axis name must be a non-empty string, got {self.name!r}")
        values = tuple(_json_value(value, f"axis {self.name!r} value")
                       for value in self.values)
        if not values:
            raise PortfolioError(f"axis {self.name!r} has no values")
        object.__setattr__(self, "values", values)
        if self.labels is not None:
            labels = tuple(_json_value(label, f"axis {self.name!r} label")
                           for label in self.labels)
            if len(labels) != len(values):
                raise PortfolioError(
                    f"axis {self.name!r} has {len(labels)} labels for "
                    f"{len(values)} values")
            object.__setattr__(self, "labels", labels)
        if self.path is None and not self.record:
            raise PortfolioError(
                f"axis {self.name!r} neither applies to the scenario "
                f"(path=None) nor records a parameter (record=False)")
        if self.path is not None:
            if not isinstance(self.path, str):
                raise PortfolioError(
                    f"axis {self.name!r} path must be a string, got "
                    f"{type(self.path).__name__}")
            self._validate_path()

    def _validate_path(self) -> None:
        section, _, field_name = self.path.partition(".")
        section_cls = _SECTIONS.get(section)
        if section_cls is None:
            raise PortfolioError(
                f"axis {self.name!r} path {self.path!r} does not start with "
                f"one of {', '.join(sorted(_SECTIONS))}")
        if not field_name:
            for value in self.values:
                if not isinstance(value, Mapping):
                    raise PortfolioError(
                        f"axis {self.name!r} targets the whole {section!r} "
                        f"section, so every value must be an object; got "
                        f"{type(value).__name__}")
            return
        known = {spec_field.name
                 for spec_field in dataclasses.fields(section_cls)}
        if field_name not in known:
            raise PortfolioError(
                f"axis {self.name!r} path {self.path!r} names no "
                f"{section} field; valid: {', '.join(sorted(known))}")

    def label_for(self, step: int) -> object:
        """The recorded ``params`` value of one step of this axis."""
        if self.labels is not None:
            return self.labels[step]
        return self.values[step]

    def apply(self, document: Dict[str, object], step: int) -> None:
        """Apply step ``step`` of this axis to a scenario document."""
        if self.path is None:
            return
        section, _, field_name = self.path.partition(".")
        value = self.values[step]
        if not field_name:
            document[section] = value
            return
        target = document.setdefault(section, {})
        if not isinstance(target, dict):
            raise PortfolioError(
                f"axis {self.name!r} cannot set {self.path!r}: section "
                f"{section!r} of the base document is not an object")
        target[field_name] = value

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON document; inverse of :meth:`from_dict`."""
        document: Dict[str, object] = {
            "name": self.name,
            "values": list(self.values),
        }
        if self.path is not None:
            document["path"] = self.path
        if self.labels is not None:
            document["labels"] = list(self.labels)
        if not self.record:
            document["record"] = False
        return document

    @classmethod
    def from_dict(cls, data: object) -> "PortfolioAxis":
        """Strictly parse one axis document."""
        if not isinstance(data, Mapping):
            raise PortfolioError(
                f"portfolio axis must be an object, got "
                f"{type(data).__name__}")
        remaining = dict(data)
        kwargs: Dict[str, object] = {}
        for key in ("name", "values", "path", "labels", "record"):
            if key in remaining:
                kwargs[key] = remaining.pop(key)
        if remaining:
            raise PortfolioError(
                f"unknown portfolio axis keys: "
                f"{', '.join(sorted(remaining))}; valid: name, values, "
                f"path, labels, record")
        if "values" in kwargs and not isinstance(kwargs["values"],
                                                 (list, tuple)):
            raise PortfolioError(
                f"axis values must be an array, got "
                f"{type(kwargs['values']).__name__}")
        if "labels" in kwargs:
            if not isinstance(kwargs["labels"], (list, tuple)):
                raise PortfolioError(
                    f"axis labels must be an array, got "
                    f"{type(kwargs['labels']).__name__}")
            kwargs["labels"] = tuple(kwargs["labels"])
        if "values" in kwargs:
            kwargs["values"] = tuple(kwargs["values"])
        try:
            return cls(**kwargs)
        except PortfolioError:
            raise
        except (TypeError, ValueError) as error:
            raise PortfolioError(f"invalid portfolio axis: {error}") from None


@dataclass(frozen=True)
class PortfolioPoint:
    """One expanded point: its row identity and its scenario."""

    index: int
    params: Dict[str, object]
    scenario: Scenario

    def cache_key(self) -> str:
        """The scenario's stable content hash (the dedup identity)."""
        return self.scenario.cache_key()


#: Valid expansion modes.
EXPANSIONS = ("cartesian", "zip")


@dataclass(frozen=True)
class Portfolio:
    """A named family of scenarios: base + axes + expansion mode."""

    name: str
    axes: Tuple[PortfolioAxis, ...] = ()
    base: Scenario = field(default_factory=Scenario)
    expansion: str = "cartesian"
    description: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise PortfolioError(
                f"portfolio name must be a non-empty string, got "
                f"{self.name!r}")
        if self.schema_version != SCHEMA_VERSION:
            raise PortfolioError(
                f"portfolio schema_version {self.schema_version!r} is not "
                f"supported; this build speaks version {SCHEMA_VERSION}")
        axes = tuple(self.axes)
        if not axes:
            raise PortfolioError(f"portfolio {self.name!r} has no axes")
        object.__setattr__(self, "axes", axes)
        names = [axis.name for axis in axes]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise PortfolioError(
                f"duplicate axis names: {', '.join(duplicates)}")
        if self.expansion not in EXPANSIONS:
            raise PortfolioError(
                f"expansion must be one of {', '.join(EXPANSIONS)}, got "
                f"{self.expansion!r}")
        if self.expansion == "zip":
            lengths = {len(axis.values) for axis in axes}
            if len(lengths) > 1:
                detail = ", ".join(f"{axis.name}({len(axis.values)})"
                                   for axis in axes)
                raise PortfolioError(
                    f"zipped axes must have equal lengths, got {detail}")

    # Expansion -------------------------------------------------------------------

    def num_points(self) -> int:
        """Number of points the expansion produces (cheap, no expansion)."""
        if self.expansion == "zip":
            return len(self.axes[0].values)
        points = 1
        for axis in self.axes:
            points *= len(axis.values)
        return points

    def expand(self, max_points: Optional[int] = None) -> List[PortfolioPoint]:
        """Materialise the ordered point list.

        Args:
            max_points: optional cap; exceeding it raises
                :class:`PortfolioError` *before* any scenario is built (the
                server's guard against runaway cartesian products).

        Raises:
            PortfolioError: on a cap violation or any point whose patched
                document fails :meth:`Scenario.from_dict` validation (the
                message names the offending point).
        """
        total = self.num_points()
        if max_points is not None and total > max_points:
            raise PortfolioError(
                f"portfolio {self.name!r} expands to {total} points, over "
                f"the cap of {max_points}")
        base_document = self.base.to_dict()
        points: List[PortfolioPoint] = []
        for index, steps in enumerate(self._step_tuples()):
            document = json.loads(json.dumps(base_document))
            params: Dict[str, object] = {}
            for axis, step in zip(self.axes, steps):
                axis.apply(document, step)
                if axis.record:
                    params[axis.name] = axis.label_for(step)
            try:
                scenario = Scenario.from_dict(document)
            except ScenarioError as error:
                raise PortfolioError(
                    f"point {index} of portfolio {self.name!r} "
                    f"({params}) is invalid: {error}") from None
            points.append(PortfolioPoint(index=index, params=params,
                                         scenario=scenario))
        return points

    def _step_tuples(self):
        """Per-point tuples of step indices, one per axis, in point order."""
        if self.expansion == "zip":
            steps = range(len(self.axes[0].values))
            return ((step,) * len(self.axes) for step in steps)
        ranges = [range(len(axis.values)) for axis in self.axes]
        return itertools.product(*ranges)

    # Serialization ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON document; inverse of :meth:`from_dict`."""
        document: Dict[str, object] = {
            "schema_version": self.schema_version,
            "name": self.name,
            "axes": [axis.to_dict() for axis in self.axes],
            "base": self.base.to_dict(),
            "expansion": self.expansion,
        }
        if self.description:
            document["description"] = self.description
        return document

    @classmethod
    def from_dict(cls, data: object) -> "Portfolio":
        """Strictly parse a portfolio document.

        Raises:
            PortfolioError: on a non-mapping document, a missing or
                unsupported ``schema_version``, unknown keys, or any
                invalid axis / base section.
        """
        if not isinstance(data, Mapping):
            raise PortfolioError(
                f"portfolio document must be a JSON object, got "
                f"{type(data).__name__}")
        remaining = dict(data)
        if "schema_version" not in remaining:
            raise PortfolioError(
                "portfolio document is missing 'schema_version'")
        version = remaining.pop("schema_version")
        if version != SCHEMA_VERSION:
            raise PortfolioError(
                f"portfolio schema_version {version!r} is not supported; "
                f"this build speaks version {SCHEMA_VERSION}")
        kwargs: Dict[str, object] = {"schema_version": version}
        if "name" in remaining:
            kwargs["name"] = remaining.pop("name")
        raw_axes = remaining.pop("axes", None)
        if raw_axes is not None:
            if not isinstance(raw_axes, (list, tuple)):
                raise PortfolioError(
                    f"portfolio axes must be an array, got "
                    f"{type(raw_axes).__name__}")
            kwargs["axes"] = tuple(PortfolioAxis.from_dict(axis)
                                   for axis in raw_axes)
        raw_base = remaining.pop("base", None)
        if raw_base is not None:
            try:
                kwargs["base"] = Scenario.from_dict(raw_base)
            except PortfolioError:
                raise
            except ScenarioError as error:
                # Re-home the error: callers of the portfolio parser catch
                # PortfolioError, and a bad base is a portfolio-document
                # problem, not a crash.
                raise PortfolioError(
                    f"invalid portfolio base: {error}") from None
        for key in ("expansion", "description"):
            if key in remaining:
                kwargs[key] = remaining.pop(key)
        if remaining:
            raise PortfolioError(
                f"unknown portfolio keys: {', '.join(sorted(remaining))}; "
                f"expected schema_version, name, axes, base, expansion, "
                f"description")
        try:
            return cls(**kwargs)
        except PortfolioError:
            raise
        except (TypeError, ValueError) as error:
            raise PortfolioError(f"invalid portfolio: {error}") from None

    def to_json(self, indent: Optional[int] = None) -> str:
        """The document as a JSON string (sorted keys, strict floats)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "Portfolio":
        """Parse a JSON string through :meth:`from_dict`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise PortfolioError(
                f"invalid portfolio JSON: {error}") from None
        return cls.from_dict(data)

    def describe(self) -> str:
        """Compact one-line summary for logs and CLI output."""
        axes = " x ".join(f"{axis.name}({len(axis.values)})"
                          for axis in self.axes)
        return (f"{self.name}: {self.num_points()} points "
                f"({self.expansion} over {axes})")


def portfolio_from_scenarios(
        name: str, scenarios: Sequence[object],
        description: str = "") -> Portfolio:
    """A zipped portfolio enumerating an explicit scenario list.

    Every scenario (a :class:`Scenario` or its document) becomes one point,
    identified by its position (``params == {"scenario": index}``). This is
    the escape hatch for sweeps that are not grids — and the bridge that
    lets any batch request ride the portfolio engine.
    """
    documents = [item.to_dict() if isinstance(item, Scenario)
                 else Scenario.from_dict(item).to_dict()
                 for item in scenarios]
    if not documents:
        raise PortfolioError(f"portfolio {name!r} has no scenarios")
    return Portfolio(
        name=name,
        description=description,
        expansion="zip",
        axes=(
            PortfolioAxis(name="scenario",
                          values=tuple(range(len(documents)))),
            PortfolioAxis(name="workload", record=False, path="workload",
                          values=tuple(doc["workload"]
                                       for doc in documents)),
            PortfolioAxis(name="hardware", record=False, path="hardware",
                          values=tuple(doc["hardware"]
                                       for doc in documents)),
            PortfolioAxis(name="solver", record=False, path="solver",
                          values=tuple(doc["solver"] for doc in documents)),
        ),
    )


# Registry ------------------------------------------------------------------------


@dataclass(frozen=True)
class RegisteredPortfolio:
    """A named portfolio builder (usually mirroring a registered figure).

    Attributes:
        name: registry key (``repro sweep <name>``).
        build: callable mapping ``reduced`` to the :class:`Portfolio`.
        figure: when set, the experiment-registry figure whose manifest the
            sweep reproduces; the sweep manifest borrows its identity and
            schema and pins row-identity against the orchestrator path.
        row: optional ``(params, payload) -> row`` mapper turning one
            point's served :class:`~repro.api.service.PlanResult` payload
            into the figure's manifest-row columns (merged over ``params``).
        description: one-line summary for ``repro sweep --list``.
    """

    name: str
    build: Callable[[bool], Portfolio]
    figure: Optional[str] = None
    row: Optional[Callable[[Mapping, Mapping], Dict[str, object]]] = None
    description: str = ""


_PORTFOLIOS: Dict[str, RegisteredPortfolio] = {}


def register_portfolio(
    *,
    name: str,
    figure: Optional[str] = None,
    row: Optional[Callable[[Mapping, Mapping], Dict[str, object]]] = None,
    description: str = "",
) -> Callable[[Callable[[bool], Portfolio]], Callable[[bool], Portfolio]]:
    """Register the decorated ``build(reduced) -> Portfolio`` under ``name``."""

    def decorator(
            build: Callable[[bool], Portfolio]) -> Callable[[bool], Portfolio]:
        if name in _PORTFOLIOS:
            raise ValueError(f"portfolio {name!r} registered twice")
        _PORTFOLIOS[name] = RegisteredPortfolio(
            name=name, build=build, figure=figure, row=row,
            description=description)
        return build

    return decorator


def ensure_loaded() -> None:
    """Import the experiments package so every portfolio registers itself."""
    importlib.import_module(_PORTFOLIOS_PACKAGE)


def get_portfolio(name: str) -> RegisteredPortfolio:
    """Look up one registered portfolio.

    Raises:
        KeyError: when the name is unknown; the message lists the
            registered names.
    """
    ensure_loaded()
    try:
        return _PORTFOLIOS[name]
    except KeyError:
        known = ", ".join(sorted(_PORTFOLIOS)) or "<none>"
        raise KeyError(
            f"unknown portfolio {name!r}; registered: {known}") from None


def portfolio_names() -> List[str]:
    """Sorted registered portfolio names."""
    ensure_loaded()
    return sorted(_PORTFOLIOS)
