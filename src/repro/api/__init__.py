"""The Scenario API: typed, serializable plan requests and the plan service.

Quick start::

    from repro.api import Scenario, WorkloadSpec, SolverSpec, PlanService

    scenario = Scenario(workload=WorkloadSpec(model="gpt3-6.7b"),
                        solver=SolverSpec(scheme="temp", engine="tcme"))
    result = PlanService().evaluate(scenario)
    print(result.spec, result.step_time, result.throughput)

Every entry point — the experiment cell runners, ``python -m repro plan``,
and the plan server — speaks this request/response shape. Scenario
*families* (model zoo x geometry x scheme grids) are described by
:class:`~repro.api.portfolio.Portfolio` and swept through the plan server's
portfolio engine (``repro sweep``).

The service classes are imported lazily (PEP 562): the scenario tree has no
dependency on :mod:`repro.core`, so core modules may import
``repro.api.scenario`` without a cycle.
"""

from repro.api.portfolio import (  # noqa: F401
    Portfolio,
    PortfolioAxis,
    PortfolioError,
    PortfolioPoint,
    RegisteredPortfolio,
    get_portfolio,
    portfolio_from_scenarios,
    portfolio_names,
    register_portfolio,
)
from repro.api.scenario import (  # noqa: F401
    SCHEMA_VERSION,
    HardwareSpec,
    Scenario,
    ScenarioError,
    SolverSpec,
    WorkloadSpec,
)

_SERVICE_EXPORTS = ("PlanService", "PlanResult", "SolverOutcome",
                    "RESULT_KINDS", "validate_result_payload")

__all__ = [
    "SCHEMA_VERSION",
    "HardwareSpec",
    "Portfolio",
    "PortfolioAxis",
    "PortfolioError",
    "PortfolioPoint",
    "RegisteredPortfolio",
    "Scenario",
    "ScenarioError",
    "SolverSpec",
    "WorkloadSpec",
    "get_portfolio",
    "portfolio_from_scenarios",
    "portfolio_names",
    "register_portfolio",
    *_SERVICE_EXPORTS,
]


def __getattr__(name):
    """Lazily expose the service layer (avoids a repro.core import cycle)."""
    if name in _SERVICE_EXPORTS:
        from repro.api import service
        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
