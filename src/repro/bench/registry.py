"""The benchmark registry (the perf twin of the experiment registry).

Mirrors :mod:`repro.runner.registry`: benchmarks are declared with the
:func:`register_benchmark` decorator at import time of
:mod:`repro.bench.suites`, looked up by name, and enumerated by the CLI
(``repro bench --list``) and the generated ``BENCHMARKS.md``.

A benchmark is one callable timed as a whole. The callable may return a
plain-JSON dict of *extras* — auxiliary measurements (internal timing
splits, speedups, parity flags) recorded alongside the wall-clock
statistics in the ``BENCH_*.json`` report.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

#: Package imported by :func:`ensure_loaded` to populate the registry.
SUITES_PACKAGE = "repro.bench.suites"

_REGISTRY: Dict[str, "Benchmark"] = {}


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark.

    Attributes:
        name: registry key (``repro bench <name>``).
        title: one-line human label.
        description: what the benchmark exercises and why it is tracked.
        fn: the timed callable; may return an extras dict or ``None``.
        repeat: default number of timed runs (CLI ``--repeat`` overrides).
        warmup: default number of untimed warmup runs before timing.
    """

    name: str
    title: str
    description: str
    fn: Callable[[], Optional[Dict[str, object]]]
    repeat: int = 5
    warmup: int = 1

    @property
    def module(self) -> str:
        """Module the benchmark callable lives in."""
        return self.fn.__module__


def register_benchmark(
    *,
    name: str,
    title: str,
    description: str,
    repeat: int = 5,
    warmup: int = 1,
) -> Callable[[Callable], Callable]:
    """Class-free registration decorator for benchmark callables."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")

    def decorator(fn: Callable[[], Optional[Dict[str, object]]]) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} is already registered")
        _REGISTRY[name] = Benchmark(
            name=name, title=title, description=description,
            fn=fn, repeat=repeat, warmup=warmup)
        return fn

    return decorator


def ensure_loaded() -> None:
    """Import the seed suites so the registry is populated (idempotent)."""
    importlib.import_module(SUITES_PACKAGE)


def benchmark_names() -> List[str]:
    """Sorted names of every registered benchmark."""
    ensure_loaded()
    return sorted(_REGISTRY)


def all_benchmarks() -> List[Benchmark]:
    """Every registered benchmark, sorted by name."""
    ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_benchmark(name: str) -> Benchmark:
    """Look one benchmark up by name.

    Raises:
        KeyError: with the known names when ``name`` is unregistered.
    """
    ensure_loaded()
    benchmark = _REGISTRY.get(name)
    if benchmark is None:
        known = ", ".join(sorted(_REGISTRY)) or "none"
        raise KeyError(f"no benchmark {name!r}; known benchmarks: {known}")
    return benchmark
