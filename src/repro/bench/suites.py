"""The seed benchmark suite (imported by ``registry.ensure_loaded``).

Nine benchmarks spanning the paths the repo cares about going fast:

* ``dls_search`` — the dual-level solver end to end (the paper's own
  search-time figure is the reason this repo tracks perf at all);
* ``fig13_sweep_local`` — the batched in-process fig13 reduced sweep, with
  the per-point baseline measured alongside so the report records the
  batching speedup and a row-parity flag;
* ``fig13_sweep_scheduler`` — the same sweep through a private scheduler
  without batching (the seed evaluation path);
* ``cache_key`` — scenario content hashing (the dedup identity every
  server/sweep layer leans on);
* ``scenario_serde`` — scenario document round-trips (the wire format);
* ``server_roundtrip`` — plan requests through the real HTTP server and
  client;
* ``trace_overhead`` — the batched fig13 sweep on the default disabled
  tracing path, quantifying the instrumentation cost (pinned under 2%);
* ``topology_routing`` — construction plus routing/ring queries across
  every registered fabric family of the topology zoo;
* ``store_backend`` — result-store open + serve cost on a 10k-entry store
  for both persistence backends, pinning the SQLite backend's O(1) open
  against the JSON-lines full-file indexing it replaces at scale.

Each callable is deterministic given the registry state; wall-clock noise
is what the warmup + median/p10/p90 harness in :mod:`repro.bench.report`
absorbs.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

from repro.api.scenario import SCHEMA_VERSION, Scenario
from repro.bench.registry import register_benchmark

#: Lazily-built shared fixtures (expanded points, baseline timings).
_STATE: Dict[str, object] = {}


def _fig13_portfolio():
    """The fig13 reduced portfolio and its expanded points (built once)."""
    if "fig13" not in _STATE:
        from repro.api.portfolio import ensure_loaded, get_portfolio

        ensure_loaded()
        portfolio = get_portfolio("fig13").build(True)
        _STATE["fig13"] = (portfolio, portfolio.expand())
    return _STATE["fig13"]


def _search_scenario() -> Scenario:
    """The dual-level search problem (mirrors the search-time figure)."""
    return Scenario.from_dict({
        "schema_version": SCHEMA_VERSION,
        "workload": {"model": "gpt3-76b"},
        "hardware": {},
        "solver": {"scheme": "temp", "engine": "tcme",
                   "max_candidates": 10, "ga_generations": 8},
    })


def _fixed_scenario_document() -> Dict[str, object]:
    """A cheap pinned-spec scenario for protocol-level benchmarks."""
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {"model": "gpt3-6.7b"},
        "hardware": {},
        "solver": {"scheme": "temp", "engine": "tcme",
                   "fixed_spec": {"dp": 4, "tp": 8}},
    }


@register_benchmark(
    name="dls_search",
    title="Dual-level solver search on gpt3-76b",
    description="One PlanService.solve: pruning, DP, genetic refinement, "
                "and finalist simulation (the paper's search-time path).",
    repeat=3,
)
def bench_dls_search() -> Optional[Dict[str, object]]:
    from repro.api.service import PlanService

    outcome = PlanService().solve(_search_scenario())
    return {"evaluations": outcome.evaluations,
            "finalists_simulated": outcome.finalists_simulated}


@register_benchmark(
    name="fig13_sweep_local",
    title="fig13 reduced sweep, batched in-process",
    description="run_portfolio_local with the BatchedPlanService (shared "
                "routes/reports/tables); extras record the per-point "
                "baseline, the batching speedup, and row parity.",
    repeat=3,
)
def bench_fig13_sweep_local() -> Optional[Dict[str, object]]:
    from repro.server.portfolio import run_portfolio_local

    portfolio, points = _fig13_portfolio()
    if "fig13_baseline" not in _STATE:
        start = time.perf_counter()
        baseline = run_portfolio_local(portfolio, jobs=1, points=points,
                                       batched=False)
        _STATE["fig13_baseline"] = (
            time.perf_counter() - start,
            [outcome.payload for outcome in baseline],
        )
    start = time.perf_counter()
    outcomes = run_portfolio_local(portfolio, jobs=1, points=points,
                                   batched=True)
    batched_seconds = time.perf_counter() - start
    baseline_seconds, baseline_payloads = _STATE["fig13_baseline"]
    return {
        "points": len(outcomes),
        "unbatched_seconds": round(baseline_seconds, 6),
        "batched_seconds": round(batched_seconds, 6),
        "speedup": round(baseline_seconds / batched_seconds, 3),
        "rows_identical": [outcome.payload for outcome in outcomes]
        == baseline_payloads,
    }


@register_benchmark(
    name="fig13_sweep_scheduler",
    title="fig13 reduced sweep through the plan scheduler",
    description="The unbatched per-point sweep on a private PlanScheduler "
                "(dedup, batching windows, store wiring) — the seed "
                "evaluation path the batched sweep is measured against.",
    repeat=3,
)
def bench_fig13_sweep_scheduler() -> Optional[Dict[str, object]]:
    from repro.server.portfolio import run_portfolio_local

    portfolio, points = _fig13_portfolio()
    outcomes = run_portfolio_local(portfolio, jobs=1, points=points,
                                   batched=False)
    return {"points": len(outcomes),
            "unique": len({outcome.key for outcome in outcomes})}


@register_benchmark(
    name="cache_key",
    title="Scenario cache-key hashing",
    description="Canonical-JSON SHA-256 content hashing of the fig13 "
                "points (the dedup identity of the server, the store, and "
                "the sweep engine).",
    repeat=5,
)
def bench_cache_key() -> Optional[Dict[str, object]]:
    _, points = _fig13_portfolio()
    rounds = 200
    keys: set = set()
    for _ in range(rounds):
        for point in points:
            keys.add(point.scenario.cache_key())
    return {"hashes": rounds * len(points), "unique": len(keys)}


@register_benchmark(
    name="scenario_serde",
    title="Scenario document round-trips",
    description="to_dict -> JSON -> from_dict round-trips of the fig13 "
                "points (the wire format of every server endpoint).",
    repeat=5,
)
def bench_scenario_serde() -> Optional[Dict[str, object]]:
    _, points = _fig13_portfolio()
    rounds = 200
    for _ in range(rounds):
        for point in points:
            document = json.loads(json.dumps(point.scenario.to_dict()))
            restored = Scenario.from_dict(document)
            if restored != point.scenario:
                raise AssertionError("scenario round-trip changed the value")
    return {"round_trips": rounds * len(points)}


@register_benchmark(
    name="server_roundtrip",
    title="Plan request through the HTTP server",
    description="A real PlanServer on an ephemeral port served by the "
                "blocking PlanClient: one evaluated plan plus repeated "
                "store-hit round-trips.",
    repeat=3,
)
def bench_server_roundtrip() -> Optional[Dict[str, object]]:
    import asyncio

    from repro.server.client import PlanClient
    from repro.server.http import PlanServer
    from repro.server.resilience import RetryPolicy
    from repro.server.scheduler import PlanScheduler

    document = _fixed_scenario_document()
    requests = 8
    sources: List[str] = []

    async def _run() -> None:
        async with PlanServer(PlanScheduler(jobs=1), port=0) as server:
            def drive() -> None:
                client = PlanClient(
                    port=server.port,
                    retry=RetryPolicy(max_attempts=2, base_delay=0.01))
                for _ in range(requests):
                    client.plan(document)
                    sources.append(client.last_source or "?")

            await asyncio.to_thread(drive)

    asyncio.run(_run())
    return {"requests": requests,
            "evaluated": sources.count("evaluated"),
            "cached": len(sources) - sources.count("evaluated")}


@register_benchmark(
    name="trace_overhead",
    title="Tracing overhead on the fig13 reduced sweep",
    description="The batched fig13 sweep with tracing disabled (the timed "
                "path), plus extras quantifying the instrumentation cost: "
                "the per-span no-op price, the span count a traced sweep "
                "emits, and the estimated disabled-path overhead — pinned "
                "under 2% of the sweep's wall time.",
    repeat=3,
)
def bench_trace_overhead() -> Optional[Dict[str, object]]:
    from repro.obs.tracing import (
        configure_tracing,
        disable_tracing,
        get_tracer,
        span,
    )
    from repro.server.portfolio import run_portfolio_local

    portfolio, points = _fig13_portfolio()
    # The timed path is the production default: instrumented, disabled.
    start = time.perf_counter()
    run_portfolio_local(portfolio, jobs=1, points=points, batched=True)
    sweep_seconds = time.perf_counter() - start

    # Price of one disabled span (a dict lookup + a shared no-op context).
    rounds = 100_000
    start = time.perf_counter()
    for _ in range(rounds):
        with span("bench.noop"):
            pass
    noop_span_seconds = (time.perf_counter() - start) / rounds

    # Span volume of the same sweep when tracing is on (buffered mode).
    if "trace_overhead_spans" not in _STATE:
        configure_tracing(buffered=True)
        try:
            run_portfolio_local(portfolio, jobs=1, points=points,
                                batched=True)
            _STATE["trace_overhead_spans"] = len(get_tracer().drain())
        finally:
            disable_tracing()
    spans_emitted = _STATE["trace_overhead_spans"]

    overhead_pct = (100.0 * spans_emitted * noop_span_seconds
                    / sweep_seconds if sweep_seconds else 0.0)
    if overhead_pct >= 2.0:
        raise AssertionError(
            f"disabled-path tracing overhead {overhead_pct:.3f}% breaches "
            f"the 2% budget ({spans_emitted} spans x "
            f"{noop_span_seconds * 1e9:.0f} ns over {sweep_seconds:.3f}s)")
    return {
        "points": len(points),
        "sweep_seconds": round(sweep_seconds, 6),
        "noop_span_ns": round(noop_span_seconds * 1e9, 1),
        "spans_per_sweep": spans_emitted,
        "disabled_overhead_pct": round(overhead_pct, 4),
    }


@register_benchmark(
    name="store_backend",
    title="Result-store open and serve, JSON lines vs SQLite",
    description="Opens a pre-built 10k-entry result store in both backends "
                "and serves a sample of gets from each; extras record the "
                "per-backend open time and the SQLite open speedup over "
                "JSON-lines full-file indexing (asserted > 1x — the reason "
                "the indexed backend exists).",
    repeat=3,
)
def bench_store_backend() -> Optional[Dict[str, object]]:
    import tempfile

    from repro.server.store import ResultStore

    entries = 10_000
    if "store_backend" not in _STATE:
        root = tempfile.mkdtemp(prefix="repro-bench-store-")
        jsonl_path = f"{root}/plans.jsonl"
        sqlite_path = f"{root}/plans.sqlite"
        payload = {"kind": "single_wafer", "model": "gpt3-6.7b",
                   "step_time": 0.5, "memory_per_die": [1.0] * 8}
        with ResultStore(jsonl_path) as jsonl_store:
            with ResultStore(sqlite_path) as sqlite_store:
                for index in range(entries):
                    key = f"{index:064x}"
                    document = {**payload, "step_time": index * 1e-6}
                    jsonl_store.put(key, document)
                    sqlite_store.put(key, document)
        _STATE["store_backend"] = (jsonl_path, sqlite_path)
    jsonl_path, sqlite_path = _STATE["store_backend"]

    sample = [f"{index:064x}" for index in range(0, entries, entries // 100)]
    timings: Dict[str, float] = {}
    for name, path in (("jsonl", jsonl_path), ("sqlite", sqlite_path)):
        start = time.perf_counter()
        store = ResultStore(path)
        timings[f"{name}_open_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        for key in sample:
            if store.get(key) is None:
                raise AssertionError(f"{name}: lost key {key}")
        timings[f"{name}_get_seconds"] = time.perf_counter() - start
        if len(store) != entries:
            raise AssertionError(
                f"{name}: expected {entries} entries, found {len(store)}")
        store.close()

    open_speedup = (timings["jsonl_open_seconds"]
                    / timings["sqlite_open_seconds"])
    if open_speedup <= 1.0:
        raise AssertionError(
            f"SQLite open ({timings['sqlite_open_seconds']:.4f}s) is not "
            f"faster than JSON-lines indexing "
            f"({timings['jsonl_open_seconds']:.4f}s) on a {entries}-entry "
            f"store — the indexed backend lost its reason to exist")
    return {
        "entries": entries,
        "gets_sampled": len(sample),
        **{name: round(value, 6) for name, value in timings.items()},
        "open_speedup": round(open_speedup, 2),
    }


@register_benchmark(
    name="topology_routing",
    title="Topology zoo construction and routing",
    description="Builds every registered fabric family on the default "
                "4x8 wafer geometry, then runs the mapping-layer hot "
                "queries on each: canonical routes, hop costs, and "
                "contiguous-ring enumeration for the standard group sizes.",
    repeat=5,
)
def bench_topology_routing() -> Optional[Dict[str, object]]:
    from repro.hardware.topologies import build_topology, topology_names

    rows, cols = 4, 8
    constructions = 0
    routes = 0
    rings = 0
    for name in topology_names():
        for _ in range(10):
            topology = build_topology({"name": name}, rows, cols)
            constructions += 1
        dies = topology.dies()
        for src in dies:
            for dst in dies:
                if src == dst:
                    continue
                path = topology.xy_route(src, dst)
                if len(path) != topology.hop_distance(src, dst):
                    raise AssertionError(
                        f"{name}: route length != hop distance")
                topology.hop_cost(src, dst)
                routes += 1
        for group_size in (2, 4, 8, 16, 32):
            for group in topology.partition_into_groups(group_size):
                topology.contiguous_ring(group)
                rings += 1
    return {"families": len(topology_names()),
            "constructions": constructions,
            "routes": routes,
            "rings": rings}
