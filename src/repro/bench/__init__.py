"""The benchmark subsystem: registry, harness, and BENCH report format.

``repro bench`` runs registered benchmarks (warmup + repeated timed runs,
median/p10/p90), emits schema-validated ``BENCH_*.json`` reports, and
compares two reports for regressions — the CI perf gate. See
:mod:`repro.bench.registry` for registration, :mod:`repro.bench.report`
for the harness and report format, and :mod:`repro.bench.suites` for the
seed suite.
"""

from repro.bench.registry import (
    Benchmark,
    all_benchmarks,
    benchmark_names,
    ensure_loaded,
    get_benchmark,
    register_benchmark,
)
from repro.bench.report import (
    BENCH_VERSION,
    compare_reports,
    load_report,
    run_benchmark,
    run_suite,
    validate_bench_report,
    write_report,
)

__all__ = [
    "BENCH_VERSION",
    "Benchmark",
    "all_benchmarks",
    "benchmark_names",
    "compare_reports",
    "ensure_loaded",
    "get_benchmark",
    "load_report",
    "register_benchmark",
    "run_benchmark",
    "run_suite",
    "validate_bench_report",
    "write_report",
]
