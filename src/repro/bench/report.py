"""Running benchmarks and the ``BENCH_*.json`` report format.

The report is the repo's perf trajectory: ``repro bench all --json
BENCH_ci.json`` emits one per CI run, and ``repro bench --compare OLD NEW``
gates regressions against the committed baseline. The format is
deliberately small and versioned:

.. code-block:: json

    {
      "bench_version": 1,
      "repro_version": "...",
      "suite": "ci",
      "generated_unix": 1765432100.0,
      "benchmarks": [
        {"name": "...", "repeat": 3, "warmup": 1,
         "seconds": [...], "median_seconds": 0.21,
         "p10_seconds": 0.20, "p90_seconds": 0.23,
         "extras": {"speedup": 2.0}}
      ]
    }

Comparison semantics (:func:`compare_reports`): a benchmark regresses when
its new median exceeds the old median by *strictly more than*
``threshold_pct`` percent. A zero/non-positive old median and a benchmark
missing from the old report are *notes*, not regressions — new benchmarks
and degenerate baselines must not block CI.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import __version__
from repro.bench.registry import Benchmark, get_benchmark
from repro.obs.tracing import span

#: Version of the BENCH report schema.
BENCH_VERSION = 1

#: Top-level keys every report must carry.
_REPORT_KEYS = ("bench_version", "repro_version", "suite", "generated_unix",
                "benchmarks")

#: Keys every benchmark entry must carry.
_ENTRY_KEYS = ("name", "repeat", "warmup", "seconds", "median_seconds",
               "p10_seconds", "p90_seconds", "extras")


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of a small sample."""
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def run_benchmark(
    benchmark: Benchmark,
    repeat: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Dict[str, object]:
    """Warm up, time ``repeat`` runs, and return the report entry."""
    repeat = repeat if repeat is not None else benchmark.repeat
    warmup = warmup if warmup is not None else benchmark.warmup
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    for _ in range(warmup):
        benchmark.fn()
    seconds: List[float] = []
    extras: Dict[str, object] = {}
    for _ in range(repeat):
        with span("bench.run", benchmark=benchmark.name):
            start = time.perf_counter()
            result = benchmark.fn()
            seconds.append(time.perf_counter() - start)
        if result:
            extras = dict(result)
    return {
        "name": benchmark.name,
        "repeat": repeat,
        "warmup": warmup,
        "seconds": [round(value, 6) for value in seconds],
        "median_seconds": round(statistics.median(seconds), 6),
        "p10_seconds": round(_percentile(seconds, 0.10), 6),
        "p90_seconds": round(_percentile(seconds, 0.90), 6),
        "extras": extras,
    }


def run_suite(
    names: Sequence[str],
    suite: str,
    repeat: Optional[int] = None,
    warmup: Optional[int] = None,
    progress: Optional[Callable[[int, int, Dict[str, object]], None]] = None,
) -> Dict[str, object]:
    """Run the named benchmarks and build the full report document."""
    entries: List[Dict[str, object]] = []
    for index, name in enumerate(names):
        entry = run_benchmark(get_benchmark(name), repeat=repeat,
                              warmup=warmup)
        entries.append(entry)
        if progress is not None:
            progress(index + 1, len(names), entry)
    return {
        "bench_version": BENCH_VERSION,
        "repro_version": __version__,
        "suite": suite,
        "generated_unix": round(time.time(), 3),
        "benchmarks": entries,
    }


def validate_bench_report(document: object) -> List[str]:
    """Schema-check one BENCH report document.

    Returns:
        Human-readable problems; empty when the document is valid.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"report must be a JSON object, got {type(document).__name__}"]
    for key in _REPORT_KEYS:
        if key not in document:
            problems.append(f"missing report key: {key}")
    version = document.get("bench_version")
    if "bench_version" in document and version != BENCH_VERSION:
        problems.append(f"bench_version {version!r} != {BENCH_VERSION}")
    entries = document.get("benchmarks")
    if not isinstance(entries, list):
        if "benchmarks" in document:
            problems.append("'benchmarks' must be a list")
        return problems
    seen: set = set()
    for position, entry in enumerate(entries):
        where = f"benchmarks[{position}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in _ENTRY_KEYS:
            if key not in entry:
                problems.append(f"{where} is missing {key!r}")
        name = entry.get("name")
        if name in seen:
            problems.append(f"{where} duplicates benchmark {name!r}")
        seen.add(name)
        seconds = entry.get("seconds")
        if isinstance(seconds, list):
            if len(seconds) != entry.get("repeat"):
                problems.append(
                    f"{where} carries {len(seconds)} timings for "
                    f"repeat={entry.get('repeat')!r}")
            if any(not isinstance(value, (int, float)) or value < 0
                   for value in seconds):
                problems.append(f"{where} has non-numeric or negative timings")
        elif "seconds" in entry:
            problems.append(f"{where} 'seconds' must be a list")
        for key in ("median_seconds", "p10_seconds", "p90_seconds"):
            value = entry.get(key)
            if key in entry and (not isinstance(value, (int, float))
                                 or value < 0):
                problems.append(f"{where} {key!r} must be a non-negative "
                                "number")
        extras = entry.get("extras")
        if "extras" in entry and not isinstance(extras, dict):
            problems.append(f"{where} 'extras' must be an object")
    return problems


def write_report(document: Dict[str, object], path: str) -> str:
    """Write the report (schema-checked first) and return ``path``."""
    problems = validate_bench_report(document)
    if problems:
        raise ValueError("refusing to write an invalid BENCH report: "
                         + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_report(path: str) -> Dict[str, object]:
    """Read and schema-check a report from disk.

    Raises:
        ValueError: when the document fails validation.
    """
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    problems = validate_bench_report(document)
    if problems:
        raise ValueError(f"invalid BENCH report {path}: "
                         + "; ".join(problems))
    return document


def compare_reports(
    old: Dict[str, object],
    new: Dict[str, object],
    threshold_pct: float,
) -> Tuple[List[str], List[str]]:
    """Median-vs-median regression check of ``new`` against ``old``.

    Returns:
        ``(regressions, notes)``. A benchmark regresses when its new median
        is strictly more than ``threshold_pct`` percent above the old
        median; an exactly-at-threshold change passes. Benchmarks new in
        ``new``, dropped from ``new``, or with a non-positive old median
        are reported as notes.
    """
    if threshold_pct < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold_pct}")
    old_entries = {entry["name"]: entry for entry in old["benchmarks"]}
    new_entries = {entry["name"]: entry for entry in new["benchmarks"]}
    regressions: List[str] = []
    notes: List[str] = []
    for name in sorted(new_entries):
        entry = new_entries[name]
        baseline = old_entries.get(name)
        if baseline is None:
            notes.append(f"{name}: new benchmark (no baseline), skipped")
            continue
        old_median = float(baseline["median_seconds"])
        new_median = float(entry["median_seconds"])
        if old_median <= 0.0:
            notes.append(f"{name}: baseline median is {old_median}s, "
                         "change not comparable")
            continue
        change_pct = (new_median - old_median) / old_median * 100.0
        line = (f"{name}: {old_median:.6f}s -> {new_median:.6f}s "
                f"({change_pct:+.1f}%)")
        if change_pct > threshold_pct:
            regressions.append(f"{line} exceeds +{threshold_pct:g}%")
        else:
            notes.append(line)
    for name in sorted(set(old_entries) - set(new_entries)):
        notes.append(f"{name}: present in baseline but not in the new "
                     "report")
    return regressions, notes
