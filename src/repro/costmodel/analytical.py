"""Analytical per-operator and whole-graph cost model (Eqs. 2-4).

The paper decomposes the cost of a compute graph into

* intra-operator cost: ``Collective(Op) + max(Comp(Op), P2P(Op))`` — the
  collective communication is exposed, while point-to-point (streaming)
  traffic overlaps with computation,
* inter-operator cost: the P2P resharding traffic between two operators whose
  partitionings differ,

and sums them over the graph (Eq. 4). This module evaluates those terms for a
single operator under a :class:`~repro.parallelism.spec.ParallelSpec`, which is
exactly the granularity the dual-level solver's dynamic program works at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hardware.config import WaferConfig
from repro.parallelism.comm import CollectiveType, collective_wire_bytes
from repro.parallelism.spec import ParallelSpec
from repro.simulation.communication import collective_steps, effective_bandwidth
from repro.simulation.config import SimulatorConfig
from repro.workloads.graph import ComputeGraph
from repro.workloads.operators import Operator, OperatorKind


@dataclass(frozen=True)
class OperatorCost:
    """Cost components of one operator under one partitioning.

    Attributes:
        compute: per-device computation time in seconds (fwd + bwd).
        collective: exposed collective-communication time in seconds.
        p2p: overlappable point-to-point / streaming time in seconds.
        memory_bytes: per-device resident bytes contributed by the operator.
    """

    compute: float
    collective: float
    p2p: float
    memory_bytes: float

    @property
    def total(self) -> float:
        """Eq. (2): collective plus the larger of compute and P2P."""
        return self.collective + max(self.compute, self.p2p)


def intra_operator_cost(
    operator: Operator,
    spec: ParallelSpec,
    wafer: WaferConfig,
    config: Optional[SimulatorConfig] = None,
    hop_factor: int = 1,
) -> OperatorCost:
    """Evaluate Eq. (2) for one operator under ``spec``.

    Args:
        operator: the analytical operator.
        spec: the hybrid partitioning applied to it.
        wafer: wafer configuration (compute and link parameters).
        config: simulator efficiency knobs.
        hop_factor: physical hops per logical step of the mapping (1 when the
            groups are contiguous).
    """
    config = config or SimulatorConfig()
    devices = spec.intra_stage_degree

    # Computation: the operator's FLOPs split evenly across the devices, with
    # TATP adding per-round launch overhead.
    flops_per_device = operator.total_flops / devices
    sustained = wafer.die.peak_flops * config.base_mfu
    rounds = max(1, spec.tatp)
    compute = flops_per_device / sustained + rounds * config.kernel_overhead

    # Collective communication: Megatron-style TP induces activation
    # all-reduces on GEMM operators; FSDP gathers weights; DP reduces
    # gradients (modelled per-operator as a share of its weights).
    collective = 0.0
    dtype_bytes = 2
    output_slice = operator.output_bytes / (
        spec.data_parallel_degree * spec.sequence_split_degree * spec.tatp)
    if spec.tp > 1 and operator.kind in (OperatorKind.GEMM, OperatorKind.BATCHED_GEMM):
        wire = collective_wire_bytes(CollectiveType.ALL_REDUCE, output_slice, spec.tp)
        collective += _collective_time(
            CollectiveType.ALL_REDUCE, wire, spec.tp, wafer, config, hop_factor)
    if spec.fsdp > 1 and operator.weight_bytes > 0:
        weight_shard = operator.weight_bytes / (spec.tp * spec.tatp)
        wire = collective_wire_bytes(CollectiveType.ALL_GATHER, weight_shard, spec.fsdp)
        collective += 2 * _collective_time(
            CollectiveType.ALL_GATHER, wire, spec.fsdp, wafer, config, hop_factor)
    if spec.dp > 1 and operator.weight_bytes > 0:
        grad_shard = operator.weight_bytes / (spec.tp * spec.tatp * spec.fsdp)
        wire = collective_wire_bytes(CollectiveType.ALL_REDUCE, grad_shard, spec.dp)
        collective += _collective_time(
            CollectiveType.ALL_REDUCE, wire, spec.dp, wafer, config, hop_factor)

    # Point-to-point streaming: TATP relays the smaller operand each round.
    p2p = 0.0
    if spec.tatp > 1 and operator.kind in (OperatorKind.GEMM, OperatorKind.BATCHED_GEMM):
        weight_shard = operator.weight_bytes / max(spec.tp, 1)
        activation_shard = operator.input_bytes / (
            spec.data_parallel_degree * spec.sequence_split_degree)
        streamed = min(weight_shard, activation_shard) if operator.weight_bytes > 0 \
            else activation_shard
        wire = streamed * (spec.tatp - 1) / spec.tatp
        p2p = _collective_time(
            CollectiveType.STREAM, wire, spec.tatp, wafer, config, hop_factor)
        # Forward, backward, and gradient stages all stream.
        p2p *= 3.0

    memory_bytes = (
        operator.weight_bytes / (spec.tp * spec.tatp * spec.fsdp)
        + operator.output_bytes / (
            spec.data_parallel_degree * spec.sequence_split_degree * spec.tatp)
    )
    return OperatorCost(
        compute=compute,
        collective=collective,
        p2p=p2p,
        memory_bytes=memory_bytes,
    )


def _collective_time(
    kind: CollectiveType,
    wire_bytes: float,
    group_size: int,
    wafer: WaferConfig,
    config: SimulatorConfig,
    hop_factor: int,
) -> float:
    steps = collective_steps(kind, group_size)
    if steps == 0 or wire_bytes <= 0:
        return 0.0
    chunk = wire_bytes / steps
    bandwidth = effective_bandwidth(wafer.d2d, chunk, config)
    return steps * hop_factor * wafer.d2d.latency + wire_bytes / bandwidth


def resharding_bytes(
    producer: Operator, producer_spec: ParallelSpec, consumer_spec: ParallelSpec
) -> float:
    """Bytes that must move when a tensor crosses a partitioning change.

    When the producer and consumer use the same partitioning no data moves;
    otherwise a fraction of the producer's output proportional to the layout
    mismatch has to be exchanged (an all-to-all style reshard). Equality is
    decided on the layout four-tuple alone — it subsumes full spec equality,
    and specs differing only in non-layout fields shard the tensor
    identically.
    """
    producer_layout = (
        producer_spec.data_parallel_degree,
        producer_spec.sequence_split_degree,
        producer_spec.tp,
        producer_spec.tatp,
    )
    consumer_layout = (
        consumer_spec.data_parallel_degree,
        consumer_spec.sequence_split_degree,
        consumer_spec.tp,
        consumer_spec.tatp,
    )
    if producer_layout == consumer_layout:
        return 0.0
    mismatched = sum(
        1 for a, b in zip(producer_layout, consumer_layout) if a != b)
    fraction = mismatched / len(producer_layout)
    devices = max(producer_spec.intra_stage_degree, 1)
    return producer.output_bytes * fraction / devices


def inter_operator_cost(
    producer: Operator,
    producer_spec: ParallelSpec,
    consumer_spec: ParallelSpec,
    wafer: WaferConfig,
    config: Optional[SimulatorConfig] = None,
    hop_factor: int = 1,
) -> float:
    """Eq. (3): the P2P resharding time between two adjacent operators."""
    config = config or SimulatorConfig()
    volume = resharding_bytes(producer, producer_spec, consumer_spec)
    if volume <= 0:
        return 0.0
    bandwidth = effective_bandwidth(wafer.d2d, volume, config)
    return hop_factor * wafer.d2d.latency + volume / bandwidth


def graph_cost(
    graph: ComputeGraph,
    assignment: Dict[int, ParallelSpec],
    wafer: WaferConfig,
    config: Optional[SimulatorConfig] = None,
    hop_factor: int = 1,
) -> float:
    """Eq. (4): total cost of a graph under a per-operator spec assignment.

    Args:
        graph: the compute graph.
        assignment: node id -> spec chosen for that operator; every node must
            be present.
        wafer: wafer configuration.
        config: simulator knobs.
        hop_factor: mapping hop factor shared by all operators.
    """
    config = config or SimulatorConfig()
    total = 0.0
    for node in graph.nodes():
        spec = assignment[node.node_id]
        total += intra_operator_cost(
            node.operator, spec, wafer, config, hop_factor).total
    for src, dst in graph.edges():
        total += inter_operator_cost(
            graph.node(src).operator, assignment[src], assignment[dst],
            wafer, config, hop_factor)
    return total
