"""Vectorized cost tables for the dual-level solver (Eqs. 2-4, batched).

The scalar functions in :mod:`repro.costmodel.analytical` are the reference
implementation of the paper's analytical cost model; they evaluate one
(operator, spec) pair per call. The solver, however, needs the same numbers
for *every* candidate spec of *every* operator — ``O(ops x specs)`` intra
costs plus an ``O(specs^2)`` resharding matrix per graph edge — and the
genetic stage re-reads them thousands of times. :class:`CostTables`
materialises all of it once as numpy arrays:

* ``intra[i, s]`` — Eq. (2) total cost of operator ``i`` under spec ``s``,
* ``memory[i, s]`` — per-die resident bytes of operator ``i`` under ``s``,
* ``reshard(u)[a, b]`` — Eq. (3) resharding time on an edge leaving node
  ``u`` when the producer runs spec ``a`` and the consumer spec ``b``
  (materialised lazily, cached per producer).

Every table cell agrees with the scalar reference to float64 precision (the
vectorized expressions replay the exact same arithmetic across the spec
axis); ``tests/costmodel/test_tables.py`` asserts the parity contract.

The module also provides :class:`PlanCache`, a bounded memoisation layer over
:func:`repro.parallelism.strategies.analyze_model` so whole-model execution
plans are derived once per ``(model, spec)`` and shared between search-space
pruning, finalist ranking, and the experiment runners.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.config import WaferConfig
from repro.obs.metrics import CounterBundle
from repro.obs.tracing import span
from repro.parallelism.spec import ParallelSpec
from repro.parallelism.strategies import (
    DEFAULT_MICROBATCHES,
    ExecutionPlan,
    analyze_model,
)
from repro.simulation.config import SimulatorConfig
from repro.workloads.graph import ComputeGraph
from repro.workloads.models import ModelConfig
from repro.workloads.operators import Operator, OperatorKind

#: Operator kinds that participate in TP collectives and TATP streaming.
_GEMM_KINDS = (OperatorKind.GEMM, OperatorKind.BATCHED_GEMM)


# Plan cache -------------------------------------------------------------------


class PlanCache:
    """Bounded LRU memoisation of :func:`analyze_model` results.

    One :class:`~repro.parallelism.strategies.ExecutionPlan` is derived per
    distinct ``(model, spec, devices, checkpointing, microbatches)`` key and
    shared by every consumer holding the cache — search-space pruning,
    finalist ranking, and the finalist simulation loop all read the same
    object instead of re-running the analysis.

    Attributes:
        hits: number of ``analyze`` calls served from the cache.
        misses: number of ``analyze`` calls that ran the underlying analysis.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.counters = CounterBundle(hits=0, misses=0)
        self._plans: "OrderedDict[tuple, ExecutionPlan]" = OrderedDict()

    # hits/misses stay plain attributes (read by SolverResult and tests);
    # the bundle behind them is the shared snapshot()/merge() convention.
    @property
    def hits(self) -> int:
        return self.counters.hits

    @hits.setter
    def hits(self, value: int) -> None:
        self.counters.hits = value

    @property
    def misses(self) -> int:
        return self.counters.misses

    @misses.setter
    def misses(self, value: int) -> None:
        self.counters.misses = value

    def __len__(self) -> int:
        return len(self._plans)

    def analyze(
        self,
        model: ModelConfig,
        spec: ParallelSpec,
        num_devices: Optional[int] = None,
        activation_checkpointing: bool = False,
        num_microbatches: int = DEFAULT_MICROBATCHES,
    ) -> ExecutionPlan:
        """Memoised :func:`analyze_model` with the same signature.

        ``num_devices`` is normalised to ``spec.total_degree`` (the default
        the analysis applies) so explicit and implicit device counts share
        one cache entry.
        """
        devices = num_devices if num_devices is not None else spec.total_degree
        key = (model, spec, devices, activation_checkpointing, num_microbatches)
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            self._plans.move_to_end(key)
            return plan
        self.misses += 1
        plan = analyze_model(
            model, spec,
            num_devices=devices,
            activation_checkpointing=activation_checkpointing,
            num_microbatches=num_microbatches,
        )
        self._plans[key] = plan
        if len(self._plans) > self.max_entries:
            self._plans.popitem(last=False)
        return plan

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: ``hits``, ``misses``, ``entries``, ``max_entries``.

        The persistence/metrics hook read by ``PlanService.stats()`` and the
        plan server's ``GET /metrics`` — a plain-JSON dict, safe to ship
        across process boundaries.
        """
        return {
            **self.counters.snapshot(),
            "entries": len(self._plans),
            "max_entries": self.max_entries,
        }

    def clear(self) -> None:
        """Drop every cached plan and reset the counters."""
        self._plans.clear()
        self.hits = 0
        self.misses = 0


# Spec columns ------------------------------------------------------------------


class _SpecColumns:
    """Candidate-spec attributes as parallel numpy columns (one row per spec)."""

    def __init__(self, candidates: Sequence[ParallelSpec]) -> None:
        def as_int(values):
            return np.asarray(list(values), dtype=np.int64)
        self.tp = as_int(spec.tp for spec in candidates)
        self.dp = as_int(spec.dp for spec in candidates)
        self.fsdp = as_int(spec.fsdp for spec in candidates)
        self.tatp = as_int(spec.tatp for spec in candidates)
        self.intra_stage = as_int(spec.intra_stage_degree for spec in candidates)
        self.dp_degree = as_int(spec.data_parallel_degree for spec in candidates)
        self.seq_degree = as_int(spec.sequence_split_degree for spec in candidates)
        # Layout signature used by the resharding model (Eq. 3): specs whose
        # four-tuple matches exchange no data.
        self.layout = np.stack(
            [self.dp_degree, self.seq_degree, self.tp, self.tatp], axis=1)


def _collective_time_vec(
    steps: np.ndarray,
    wire: np.ndarray,
    wafer: WaferConfig,
    config: SimulatorConfig,
    hop_factor: int,
) -> np.ndarray:
    """Vector version of ``analytical._collective_time`` over the spec axis."""
    active = (steps > 0) & (wire > 0)
    safe_steps = np.maximum(steps, 1)
    chunk = wire / safe_steps
    ramp = config.link_ramp_bytes
    if ramp > 0:
        safe_chunk = np.where(chunk > 0, chunk, 1.0)
        bandwidth = np.where(
            chunk > 0,
            wafer.d2d.bandwidth * safe_chunk / (safe_chunk + ramp),
            wafer.d2d.bandwidth,
        )
    else:
        bandwidth = np.full_like(wire, float(wafer.d2d.bandwidth))
    time = steps * hop_factor * wafer.d2d.latency + wire / bandwidth
    return np.where(active, time, 0.0)


# Cost tables -------------------------------------------------------------------


class CostTables:
    """Precomputed cost / memory / resharding tables for one solver problem.

    Args:
        graph: the compute graph being optimised.
        candidates: candidate specs, indexed ``0..S-1`` throughout the tables.
        wafer: wafer configuration for the analytical model.
        config: simulator knobs.
        hop_factor: physical hops per logical step (1 for contiguous groups).

    Tables are materialised lazily so the ``cells_materialized`` counter —
    the quantity the search-time comparison reports as *evaluations* — only
    counts work that actually happened. Rows for nodes sharing identical
    operator parameters are computed once and aliased.
    """

    def __init__(
        self,
        graph: ComputeGraph,
        candidates: Sequence[ParallelSpec],
        wafer: WaferConfig,
        config: Optional[SimulatorConfig] = None,
        hop_factor: int = 1,
    ) -> None:
        if not candidates:
            raise ValueError("candidate spec list must not be empty")
        self.graph = graph
        self.candidates = list(candidates)
        self.wafer = wafer
        self.config = config or SimulatorConfig()
        self.hop_factor = hop_factor
        self.num_specs = len(self.candidates)
        self.spec_index: Dict[ParallelSpec, int] = {
            spec: index for index, spec in enumerate(self.candidates)}
        self.node_ids: List[int] = [node.node_id for node in graph.nodes()]
        self.node_index: Dict[int, int] = {
            node_id: index for index, node_id in enumerate(self.node_ids)}
        self.cells_materialized = 0

        self._cols = _SpecColumns(self.candidates)
        # The layout-mismatch base of Eq. (3) is spec-only: fraction of the
        # producer output that moves, divided by the producer's device count.
        mismatch = (
            self._cols.layout[:, None, :] != self._cols.layout[None, :, :]
        ).sum(axis=2)
        self._reshard_fraction = mismatch / self._cols.layout.shape[1]

        self._reshard_mats: Dict[int, np.ndarray] = {}
        # Dedup cache keyed by the producer parameter the reshard model reads.
        self._reshard_by_bytes: Dict[float, np.ndarray] = {}
        # Set by subset(): cells are gathered from the parent's (union)
        # tables instead of being rebuilt.
        self._parent: Optional["CostTables"] = None
        self._parent_indices: Optional[np.ndarray] = None
        self._intra: Optional[np.ndarray] = None
        self._memory: Optional[np.ndarray] = None
        self._edge_arrays: Optional[tuple] = None
        self._intra_list: Optional[List[List[float]]] = None
        self._edge_list: Optional[List[tuple]] = None
        self._edges_at: Optional[List[List[int]]] = None

    def ensure_compatible(
        self,
        graph: ComputeGraph,
        candidates: Sequence[ParallelSpec],
        wafer: WaferConfig,
        config: Optional[SimulatorConfig],
    ) -> None:
        """Raise when this table was built for a different solver problem.

        Spec indices from the tables are used to index the caller's
        ``candidates`` list, and the cached cells bake in the graph, wafer,
        and simulator knobs — a mismatch on any of them would silently
        produce assignments optimised for the wrong problem.
        """
        if self.candidates != list(candidates):
            raise ValueError(
                "tables were built over a different candidate list")
        if self.graph is not graph:
            raise ValueError("tables were built over a different graph")
        if self.wafer != wafer:
            raise ValueError(
                "tables were built for a different wafer configuration")
        if config is not None and self.config != config:
            raise ValueError(
                "tables were built with different simulator knobs")

    def subset(self, candidates: Sequence[ParallelSpec]) -> "CostTables":
        """A child table over a sub-list of this table's candidates.

        Cells are gathered lazily from this (union) table instead of being
        rebuilt, so portfolio axes that only narrow the spec list — e.g. a
        ``max_candidates`` sweep whose downsampled lists nest — reuse every
        materialised cell. Both tables read the same elementwise vectorized
        arithmetic (no reductions run across the spec axis), so the gathered
        values are bit-identical to a fresh build over ``candidates``.
        """
        missing = [spec for spec in candidates
                   if spec not in self.spec_index]
        if missing:
            raise ValueError(
                f"{len(missing)} candidate spec(s) are not covered by the "
                "parent tables; build a fresh CostTables instead")
        child = CostTables(
            self.graph, candidates, self.wafer, self.config, self.hop_factor)
        child._parent = self
        child._parent_indices = np.asarray(
            [self.spec_index[spec] for spec in candidates], dtype=np.int64)
        return child

    # Table access -------------------------------------------------------------

    def intra_row(self, node_id: int) -> np.ndarray:
        """Eq. (2) totals of ``node_id`` under every candidate spec."""
        return self.intra_matrix()[self.node_index[node_id]]

    def memory_row(self, node_id: int) -> np.ndarray:
        """Per-die resident bytes of ``node_id`` under every candidate spec."""
        self.intra_matrix()
        return self._memory[self.node_index[node_id]]

    def reshard_matrix(self, node_id: int) -> np.ndarray:
        """Eq. (3) ``S x S`` resharding times for edges leaving ``node_id``."""
        matrix = self._reshard_mats.get(node_id)
        if matrix is None:
            operator = self.graph.node(node_id).operator
            matrix = self._reshard_by_bytes.get(operator.output_bytes)
            if matrix is None:
                if self._parent is not None:
                    idx = self._parent_indices
                    matrix = self._parent.reshard_matrix(node_id)[
                        np.ix_(idx, idx)]
                else:
                    matrix = self._build_reshard(operator)
                self._reshard_by_bytes[operator.output_bytes] = matrix
            self._reshard_mats[node_id] = matrix
            self.cells_materialized += matrix.size
        return matrix

    def intra_matrix(self) -> np.ndarray:
        """The full ``nodes x specs`` Eq. (2) table (rows in node order).

        Built in one vectorized pass over the graph's *unique* operators
        (transformer layers repeat the same handful); rows of nodes sharing
        operator parameters alias the same computation.
        """
        if self._intra is None:
            if self._parent is not None:
                idx = self._parent_indices
                self._intra = self._parent.intra_matrix()[:, idx]
                self._memory = self._parent._memory[:, idx]
                self.cells_materialized += self._intra.size
                return self._intra
            unique: Dict[tuple, int] = {}
            operators: List[Operator] = []
            row_of: List[int] = []
            for node_id in self.node_ids:
                operator = self.graph.node(node_id).operator
                key = (operator.kind, operator.total_flops,
                       operator.input_bytes, operator.weight_bytes,
                       operator.output_bytes)
                index = unique.get(key)
                if index is None:
                    index = len(operators)
                    unique[key] = index
                    operators.append(operator)
                row_of.append(index)
            total, memory = self._build_intra(operators)
            self._intra = total[row_of]
            self._memory = memory[row_of]
            self.cells_materialized += self._intra.size
        return self._intra

    # Whole-graph costs --------------------------------------------------------

    def assignment_cost(self, assignment: Dict[int, ParallelSpec]) -> float:
        """Eq. (4) via table lookups; parity partner of ``graph_cost``."""
        genome = [self.spec_index[assignment[node_id]]
                  for node_id in self.node_ids]
        return self.genome_cost(np.asarray(genome, dtype=np.int64))

    def genome_cost(self, genome: np.ndarray) -> float:
        """Eq. (4) of the assignment encoded as per-node spec indices."""
        intra = self.intra_matrix()
        total = float(intra[np.arange(len(self.node_ids)), genome].sum())
        edge_src, edge_dst, edge_tensor = self.edge_arrays()
        if len(edge_src):
            total += float(edge_tensor[
                np.arange(len(edge_src)),
                genome[edge_src],
                genome[edge_dst],
            ].sum())
        return total

    def population_costs(self, genomes: np.ndarray) -> np.ndarray:
        """Eq. (4) for a whole ``(P, N)`` population in one fancy-indexed pass."""
        genomes = np.asarray(genomes, dtype=np.int64)
        intra = self.intra_matrix()
        costs = intra[np.arange(genomes.shape[1])[None, :], genomes].sum(axis=1)
        edge_src, edge_dst, edge_tensor = self.edge_arrays()
        if len(edge_src):
            costs = costs + edge_tensor[
                np.arange(len(edge_src))[None, :],
                genomes[:, edge_src],
                genomes[:, edge_dst],
            ].sum(axis=1)
        return costs

    def delta_cost(
        self, genome: Sequence[int], cost: float, child: Sequence[int]
    ) -> float:
        """Cost of ``child`` given its parent's cost, touching only changed genes.

        Re-evaluates the intra terms of mutated positions and the resharding
        terms of edges incident to them — ``O(changed)`` instead of
        ``O(nodes + edges)`` — which is what lets the genetic stage score a
        child for the price of its diff. Plain-Python indexing on purpose:
        the touched sets are a handful of cells, far below the size where
        numpy dispatch overhead pays for itself.
        """
        changed = [
            index for index in range(len(genome))
            if genome[index] != child[index]
        ]
        if not changed:
            return cost
        intra, edge_list, edges_at = self._delta_lists()
        delta = 0.0
        touched: set = set()
        for index in changed:
            row = intra[index]
            delta += row[child[index]] - row[genome[index]]
            touched.update(edges_at[index])
        for edge_id in touched:
            src, dst, matrix = edge_list[edge_id]
            delta += (matrix[child[src]][child[dst]]
                      - matrix[genome[src]][genome[dst]])
        return cost + delta

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Edge endpoints (as node positions) and the stacked reshard tensor."""
        if self._edge_arrays is None:
            edges = self.graph.edges()
            src = np.asarray(
                [self.node_index[u] for u, _ in edges], dtype=np.int64)
            dst = np.asarray(
                [self.node_index[v] for _, v in edges], dtype=np.int64)
            if edges:
                tensor = np.stack(
                    [self.reshard_matrix(u) for u, _ in edges])
            else:
                tensor = np.zeros((0, self.num_specs, self.num_specs))
            self._edge_arrays = (src, dst, tensor)
        return self._edge_arrays

    def _delta_lists(
        self,
    ) -> Tuple[List[List[float]], List[Tuple[int, int, List[List[float]]]],
               List[List[int]]]:
        """Plain-list mirrors of the tables for the scalar delta-eval path.

        ``tolist()`` preserves the exact float64 values; Python-float
        arithmetic on them is several times faster than numpy scalar
        indexing at delta-evaluation granularity.
        """
        if self._edge_list is None:
            intra = self.intra_matrix().tolist()
            edge_list: List[Tuple[int, int, List[List[float]]]] = []
            edges_at: List[List[int]] = [[] for _ in self.node_ids]
            for u, v in self.graph.edges():
                src, dst = self.node_index[u], self.node_index[v]
                edge_id = len(edge_list)
                edge_list.append((src, dst, self.reshard_matrix(u).tolist()))
                edges_at[src].append(edge_id)
                edges_at[dst].append(edge_id)
            self._intra_list = intra
            self._edge_list = edge_list
            self._edges_at = edges_at
        return self._intra_list, self._edge_list, self._edges_at

    # Table construction -------------------------------------------------------

    def _build_intra(
        self, operators: Sequence[Operator]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized Eq. (2) over an ``operators x specs`` grid.

        Broadcasts operator parameters as column vectors against the spec
        columns, replaying the exact arithmetic of the scalar
        ``intra_operator_cost`` across the whole grid in one pass.
        """
        cols, wafer, config = self._cols, self.wafer, self.config
        hop = self.hop_factor

        def column(values):
            return np.asarray(list(values))[:, None]
        op_flops = column(op.total_flops for op in operators)
        op_in = column(op.input_bytes for op in operators)
        op_weight = column(op.weight_bytes for op in operators)
        op_out = column(op.output_bytes for op in operators)
        is_gemm = column(op.kind in _GEMM_KINDS for op in operators)
        has_weight = op_weight > 0

        compute = (
            op_flops / cols.intra_stage
            / (wafer.die.peak_flops * config.base_mfu)
            + cols.tatp * config.kernel_overhead
        )

        # Megatron TP: activation all-reduce over the TP group (GEMMs only).
        output_slice = op_out / (cols.dp_degree * cols.seq_degree * cols.tatp)
        tp_active = is_gemm & (cols.tp > 1)
        wire = np.where(
            tp_active, 2.0 * (cols.tp - 1) / cols.tp * output_slice, 0.0)
        steps = np.where(tp_active, 2 * (cols.tp - 1), 0)
        collective = _collective_time_vec(steps, wire, wafer, config, hop)

        # FSDP: weight all-gather before forward and backward.
        weight_shard = op_weight / (cols.tp * cols.tatp)
        fsdp_active = has_weight & (cols.fsdp > 1)
        wire = np.where(
            fsdp_active, (cols.fsdp - 1) / cols.fsdp * weight_shard, 0.0)
        steps = np.where(fsdp_active, cols.fsdp - 1, 0)
        collective = collective + 2.0 * _collective_time_vec(
            steps, wire, wafer, config, hop)

        # DP: per-operator share of the gradient all-reduce.
        grad_shard = op_weight / (cols.tp * cols.tatp * cols.fsdp)
        dp_active = has_weight & (cols.dp > 1)
        wire = np.where(
            dp_active, 2.0 * (cols.dp - 1) / cols.dp * grad_shard, 0.0)
        steps = np.where(dp_active, 2 * (cols.dp - 1), 0)
        collective = collective + _collective_time_vec(
            steps, wire, wafer, config, hop)

        # TATP: stream the smaller operand each round (fwd, bwd, grad).
        activation_shard = op_in / (cols.dp_degree * cols.seq_degree)
        streamed = np.where(
            has_weight,
            np.minimum(op_weight / cols.tp, activation_shard),
            activation_shard)
        tatp_active = is_gemm & (cols.tatp > 1)
        wire = np.where(
            tatp_active, streamed * (cols.tatp - 1) / cols.tatp, 0.0)
        steps = np.where(tatp_active, cols.tatp - 1, 0)
        p2p = 3.0 * _collective_time_vec(steps, wire, wafer, config, hop)

        total = collective + np.maximum(compute, p2p)
        memory = (
            op_weight / (cols.tp * cols.tatp * cols.fsdp)
            + op_out / (cols.dp_degree * cols.seq_degree * cols.tatp)
        )
        return total, memory

    def _build_reshard(self, operator: Operator) -> np.ndarray:
        """Vectorized Eq. (3) over every (producer spec, consumer spec) pair."""
        with span("tables.reshard", specs=self.num_specs):
            return self._build_reshard_matrix(operator)

    def _build_reshard_matrix(self, operator: Operator) -> np.ndarray:
        cols, wafer, config = self._cols, self.wafer, self.config
        volume = (
            operator.output_bytes * self._reshard_fraction
            / cols.intra_stage[:, None]
        )
        active = volume > 0
        safe_volume = np.where(active, volume, 1.0)
        ramp = config.link_ramp_bytes
        if ramp > 0:
            bandwidth = wafer.d2d.bandwidth * safe_volume / (safe_volume + ramp)
        else:
            bandwidth = np.full_like(safe_volume, float(wafer.d2d.bandwidth))
        time = self.hop_factor * wafer.d2d.latency + safe_volume / bandwidth
        return np.where(active, time, 0.0)
