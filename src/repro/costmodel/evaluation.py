"""Accuracy metrics for the cost models (Fig. 21).

The paper validates its cost models with two statistics over 500 test cases
per category: the Pearson correlation between predicted and measured latency
and the mean relative error. The DNN model reaches correlations above 0.98
with errors around 4-5%; the linear-regression baseline stays near 0.99
correlation but 10-15% error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.costmodel.dataset import CostSample


def correlation(predicted: Sequence[float], measured: Sequence[float]) -> float:
    """Pearson correlation coefficient between predictions and measurements."""
    predicted_arr = np.asarray(predicted, dtype=np.float64)
    measured_arr = np.asarray(measured, dtype=np.float64)
    if predicted_arr.size != measured_arr.size:
        raise ValueError("predicted and measured must have the same length")
    if predicted_arr.size < 2:
        raise ValueError("need at least two points to compute a correlation")
    if predicted_arr.std() == 0 or measured_arr.std() == 0:
        return 0.0
    return float(np.corrcoef(predicted_arr, measured_arr)[0, 1])


def mean_relative_error(
    predicted: Sequence[float], measured: Sequence[float]
) -> float:
    """Mean absolute relative error of the predictions."""
    predicted_arr = np.asarray(predicted, dtype=np.float64)
    measured_arr = np.asarray(measured, dtype=np.float64)
    if predicted_arr.size != measured_arr.size:
        raise ValueError("predicted and measured must have the same length")
    if predicted_arr.size == 0:
        raise ValueError("cannot compute the error of an empty set")
    denominator = np.maximum(np.abs(measured_arr), 1e-12)
    return float(np.mean(np.abs(predicted_arr - measured_arr) / denominator))


@dataclass(frozen=True)
class ModelAccuracy:
    """Accuracy of one cost model on one sample category."""

    category: str
    correlation: float
    relative_error: float


def evaluate_model(model, samples: Sequence[CostSample]) -> Dict[str, ModelAccuracy]:
    """Evaluate a fitted cost model per sample category.

    Args:
        model: any object with a ``predict(samples) -> array`` method.
        samples: labelled test samples.

    Returns:
        Mapping from category name to its :class:`ModelAccuracy`.
    """
    results: Dict[str, ModelAccuracy] = {}
    categories = sorted({sample.category for sample in samples})
    for category in categories:
        subset = [sample for sample in samples if sample.category == category]
        predictions = model.predict(subset)
        measured = [sample.latency for sample in subset]
        results[category] = ModelAccuracy(
            category=category,
            correlation=correlation(predictions, measured),
            relative_error=mean_relative_error(predictions, measured),
        )
    return results
