"""Wafer-centric cost models (Section VII-A).

The Dual-Level Wafer Solver needs to evaluate millions of candidate
configurations, far too many to push through the full simulator. The paper
therefore trains a DNN surrogate on simulator data and falls back to the
analytical expressions of Eqs. (2)-(4) for composition:

* :mod:`repro.costmodel.analytical` — per-operator and whole-graph analytical
  costs (compute, collective, P2P, and their overlap).
* :mod:`repro.costmodel.tables` — the vectorized cost-table layer: numpy
  ``ops x specs`` intra-cost/memory matrices, per-edge ``specs x specs``
  resharding tensors, and the :class:`~repro.costmodel.tables.PlanCache`
  memoising whole-model execution plans.
* :mod:`repro.costmodel.dataset` — sample generation: random operator /
  communication configurations labelled by the analytical simulator.
* :mod:`repro.costmodel.features` — feature extraction shared by the learned
  models.
* :mod:`repro.costmodel.dnn` — a small numpy MLP regressor (the paper's DNN
  cost model).
* :mod:`repro.costmodel.regression` — the multivariate linear-regression
  baseline of Fig. 21.
* :mod:`repro.costmodel.evaluation` — correlation / relative-error metrics
  used to validate the models (Fig. 21).

Scalar-vs-vectorized contract
-----------------------------

The scalar functions (:func:`~repro.costmodel.analytical.intra_operator_cost`,
:func:`~repro.costmodel.analytical.inter_operator_cost`,
:func:`~repro.costmodel.analytical.graph_cost`) are the *reference
implementation* of Eqs. (2)-(4): one (operator, spec) evaluation per call,
written to read like the paper. :class:`~repro.costmodel.tables.CostTables`
is the *performance implementation*: it replays the identical arithmetic
across the candidate-spec axis with numpy and is what the dual-level solver's
hot paths consume. Any change to the analytical model must be made in both
places; ``tests/costmodel/test_tables.py`` enforces agreement to within
1e-9 relative error cell by cell, so a divergence fails CI rather than
silently skewing the search.
"""

from repro.costmodel.analytical import (
    OperatorCost,
    graph_cost,
    intra_operator_cost,
    inter_operator_cost,
    resharding_bytes,
)
from repro.costmodel.tables import CostTables, PlanCache
from repro.costmodel.dataset import CostSample, generate_dataset
from repro.costmodel.features import FEATURE_NAMES, sample_features
from repro.costmodel.dnn import MLPCostModel
from repro.costmodel.regression import LinearCostModel
from repro.costmodel.evaluation import correlation, mean_relative_error, evaluate_model

__all__ = [
    "OperatorCost",
    "graph_cost",
    "intra_operator_cost",
    "inter_operator_cost",
    "resharding_bytes",
    "CostTables",
    "PlanCache",
    "CostSample",
    "generate_dataset",
    "FEATURE_NAMES",
    "sample_features",
    "MLPCostModel",
    "LinearCostModel",
    "correlation",
    "mean_relative_error",
    "evaluate_model",
]
