"""Dataset generation for the learned cost models.

The paper trains its DNN cost model on a dataset profiled with ASTRA-sim
across a range of configurations, then validates on 500 held-out cases per
category (computation, communication, overlap). Here the analytical models of
:mod:`repro.simulation` play the simulator's role: samples draw random operator
shapes and parallel degrees, and the label is the latency the analytical model
produces (with a small amount of multiplicative noise standing in for the
simulator effects the closed forms do not capture, so that the regression
problem is non-trivial).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hardware.config import WaferConfig, default_wafer_config
from repro.parallelism.comm import CollectiveType, collective_wire_bytes
from repro.simulation.communication import collective_steps, effective_bandwidth
from repro.simulation.config import SimulatorConfig


@dataclass
class CostSample:
    """One labelled sample for the cost models.

    Attributes:
        category: "compute", "communication", or "overlap".
        inputs: raw feature dictionary (see
            :func:`repro.costmodel.features.sample_features`).
        latency: the labelled latency in seconds.
    """

    category: str
    inputs: Dict[str, float]
    latency: float


def _compute_latency(
    flops: float, wafer: WaferConfig, config: SimulatorConfig, rounds: int
) -> float:
    sustained = wafer.die.peak_flops * config.base_mfu
    return flops / sustained + rounds * config.kernel_overhead


def _collective_latency(
    kind: CollectiveType,
    buffer_bytes: float,
    group_size: int,
    wafer: WaferConfig,
    config: SimulatorConfig,
) -> float:
    wire = collective_wire_bytes(kind, buffer_bytes, group_size)
    steps = collective_steps(kind, group_size)
    if steps == 0:
        return 0.0
    chunk = wire / steps
    bandwidth = effective_bandwidth(wafer.d2d, chunk, config)
    return steps * wafer.d2d.latency + wire / bandwidth


def generate_dataset(
    num_samples: int = 500,
    categories: Sequence[str] = ("compute", "communication", "overlap"),
    seed: int = 0,
    noise: float = 0.03,
    wafer: Optional[WaferConfig] = None,
    config: Optional[SimulatorConfig] = None,
) -> List[CostSample]:
    """Generate labelled cost samples.

    Args:
        num_samples: samples per category.
        categories: which categories to generate.
        seed: RNG seed.
        noise: multiplicative log-normal noise applied to the labels so the
            learned models have simulator-like residuals to fit.
        wafer: wafer configuration; defaults to Table I.
        config: simulator knobs.

    Returns:
        ``len(categories) * num_samples`` labelled samples.
    """
    if num_samples <= 0:
        raise ValueError(f"num_samples must be positive, got {num_samples}")
    rng = random.Random(seed)
    wafer = wafer or default_wafer_config()
    config = config or SimulatorConfig()
    samples: List[CostSample] = []
    for category in categories:
        for _ in range(num_samples):
            samples.append(_sample_one(category, rng, wafer, config, noise))
    return samples


def _sample_one(
    category: str,
    rng: random.Random,
    wafer: WaferConfig,
    config: SimulatorConfig,
    noise: float,
) -> CostSample:
    batch = rng.choice([1, 2, 4, 8, 16, 32, 64, 128])
    seq = rng.choice([512, 1024, 2048, 4096, 8192, 16384])
    hidden = rng.choice([1024, 2048, 4096, 8192, 12288])
    intermediate = hidden * rng.choice([1, 3, 4])
    group_size = rng.choice([2, 4, 8, 16, 32])
    tatp = rng.choice([1, 2, 4, 8, 16])
    dtype_bytes = 2

    flops = 2.0 * batch * seq * hidden * intermediate
    tensor_bytes = float(batch * seq * hidden * dtype_bytes)
    weight_bytes = float(hidden * intermediate * dtype_bytes)

    if category == "compute":
        rounds = max(1, tatp)
        latency = _compute_latency(flops / group_size, wafer, config, rounds)
        inputs = {
            "batch": batch, "seq": seq, "hidden": hidden,
            "intermediate": intermediate, "flops": flops / group_size,
            "bytes": tensor_bytes, "group_size": group_size, "tatp": tatp,
            "steps": rounds, "is_collective": 0.0, "is_overlap": 0.0,
        }
    elif category == "communication":
        kind = rng.choice([
            CollectiveType.ALL_REDUCE, CollectiveType.ALL_GATHER,
            CollectiveType.REDUCE_SCATTER, CollectiveType.P2P,
        ])
        latency = _collective_latency(kind, tensor_bytes, group_size, wafer, config)
        wire_bytes = collective_wire_bytes(kind, tensor_bytes, group_size)
        inputs = {
            "batch": batch, "seq": seq, "hidden": hidden,
            "intermediate": intermediate, "flops": 0.0,
            "bytes": wire_bytes, "group_size": group_size, "tatp": 0,
            "steps": collective_steps(kind, group_size),
            "is_collective": 1.0, "is_overlap": 0.0,
        }
    elif category == "overlap":
        rounds = max(2, tatp)
        compute = _compute_latency(flops / rounds, wafer, config, rounds)
        streamed = min(weight_bytes, tensor_bytes)
        stream = _collective_latency(
            CollectiveType.STREAM, streamed, rounds, wafer, config)
        latency = max(compute, stream) + 0.05 * min(compute, stream)
        inputs = {
            "batch": batch, "seq": seq, "hidden": hidden,
            "intermediate": intermediate, "flops": flops / rounds,
            "bytes": streamed, "group_size": rounds, "tatp": rounds,
            "steps": rounds - 1, "is_collective": 0.0, "is_overlap": 1.0,
        }
    else:
        raise ValueError(f"unknown sample category '{category}'")

    if noise > 0:
        latency *= math.exp(rng.gauss(0.0, noise))
    return CostSample(category=category, inputs=inputs, latency=latency)
