"""Multivariate linear-regression baseline cost model (Fig. 21 baseline).

The paper compares its DNN cost model against a multivariate regression fitted
on the same data; the regression reaches correlations around 0.99 but relative
errors of 10-15%, noticeably worse than the DNN's ~4.4%. The baseline here is
an ordinary-least-squares fit on the raw (non-log) features.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.costmodel.dataset import CostSample
from repro.costmodel.features import feature_matrix


class LinearCostModel:
    """Ordinary least-squares latency regressor."""

    def __init__(self) -> None:
        self._coefficients: Optional[np.ndarray] = None

    def fit(self, samples: Sequence[CostSample]) -> "LinearCostModel":
        """Fit the regression on labelled samples and return ``self``."""
        if not samples:
            raise ValueError("cannot fit on an empty dataset")
        features = feature_matrix([sample.inputs for sample in samples])
        design = np.hstack([features, np.ones((features.shape[0], 1))])
        targets = np.array([sample.latency for sample in samples])
        self._coefficients, *_ = np.linalg.lstsq(design, targets, rcond=None)
        return self

    def predict(self, samples: Sequence[CostSample]) -> np.ndarray:
        """Predict latencies (seconds) for the given samples."""
        return self.predict_inputs([sample.inputs for sample in samples])

    def predict_inputs(self, inputs: Sequence[Dict[str, float]]) -> np.ndarray:
        """Predict latencies from raw feature dictionaries."""
        if self._coefficients is None:
            raise RuntimeError("the model must be fitted before predicting")
        features = feature_matrix(list(inputs))
        design = np.hstack([features, np.ones((features.shape[0], 1))])
        predictions = design @ self._coefficients
        return np.maximum(predictions, 1e-12)

    def predict_one(self, inputs: Dict[str, float]) -> float:
        """Predict the latency of a single configuration."""
        return float(self.predict_inputs([inputs])[0])
