"""Portfolio-level batching of cost tables, reports, and routes.

A portfolio sweep (:mod:`repro.api.portfolio`) evaluates many nearby
scenarios: the points share a wafer geometry, most share a model, and axes
that only touch :class:`~repro.api.scenario.SolverSpec` leave the underlying
``ops x specs`` cost structure untouched. The per-point evaluation path
nevertheless rebuilds everything from scratch. This module batches the three
layers that repeat:

* **routes** — :class:`~repro.hardware.topology.RouteTables` memoise
  dimension-ordered paths, ring orderings, and hop factors on each wafer the
  portfolio resolves (the dominant cost of mapping: the fig13 portfolio
  re-derives the same routes tens of thousands of times);
* **reports** — :class:`ReportCache` memoises whole simulation reports per
  ``(model, spec, devices, engine, checkpointing)`` within one hardware
  group, so points whose candidate sets overlap simulate each spec once;
* **cost tables** — :class:`PortfolioTables.tables_for` hands the dual-level
  solver one :class:`~repro.costmodel.tables.CostTables` per (hardware,
  model), re-sliced with :meth:`~repro.costmodel.tables.CostTables.subset`
  when an axis only narrows the candidate list.

Every layer is pure memoisation of deterministic computations, so batched
sweeps are bit-identical to the per-point path —
``tests/costmodel/test_portfolio_batching.py`` pins the contract over the
fig13 reduced portfolio.

:class:`BatchedPlanService` bundles the three layers behind the standard
:class:`~repro.api.service.PlanService` interface; ``run_portfolio_local``
uses it by default for in-process sweeps.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.api.service import PlanService
from repro.core.framework import _simulate_with_fallback
from repro.costmodel.tables import CostTables, PlanCache
from repro.hardware.topology import RouteTables
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.simulation.simulator import SimulationReport, WaferSimulator
from repro.workloads.models import ModelConfig
from repro.workloads.transformer import representative_layer_graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scenario import Scenario


class ReportCache:
    """Memoisation of :func:`_simulate_with_fallback` results.

    Valid only while the simulator's wafer and :class:`SimulatorConfig` stay
    fixed — the cache does not key on them. :class:`PortfolioTables` enforces
    that contract by scoping one cache per hardware group (per canonical
    hardware document), which is also why this class lives here rather than
    in the service layer.
    """

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self._reports: Dict[Tuple, SimulationReport] = {}

    def __len__(self) -> int:
        return len(self._reports)

    def simulate(
        self,
        simulator: WaferSimulator,
        plan_cache: PlanCache,
        model: ModelConfig,
        spec: ParallelSpec,
        num_devices: int,
        engine: str,
        allow_checkpointing: bool,
    ) -> SimulationReport:
        """Memoised twin of :func:`_simulate_with_fallback`."""
        key = (model, spec, num_devices, engine, allow_checkpointing)
        report = self._reports.get(key)
        if report is not None:
            self.hits += 1
            return report
        self.misses += 1
        report = _simulate_with_fallback(
            simulator, plan_cache, model, spec, num_devices, engine,
            allow_checkpointing)
        self._reports[key] = report
        return report

    def stats(self) -> Dict[str, int]:
        """Counter snapshot: ``hits``, ``misses``, ``entries``."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._reports)}


class PortfolioTables:
    """Shared evaluation state for the points of one portfolio sweep.

    Owns the report caches (one per hardware group), the solver cost tables
    (one union table per hardware + model, re-sliced per candidate list),
    and the route tables enabled on each wafer it primes. All state is
    derived lazily as points arrive — the class needs no upfront knowledge
    of the portfolio's axes.
    """

    def __init__(self) -> None:
        self._report_caches: Dict[str, ReportCache] = {}
        self._solver_tables: Dict[Tuple, CostTables] = {}
        self._route_tables: Dict[int, RouteTables] = {}
        self._wafers: List[WaferScaleChip] = []
        self.tables_hits = 0
        self.tables_misses = 0

    # Grouping ------------------------------------------------------------------

    @staticmethod
    def hardware_key(scenario: "Scenario") -> str:
        """Canonical JSON of the scenario's hardware section.

        Two scenarios with the same key resolve the same wafer and simulator
        configuration, which is the validity contract of :class:`ReportCache`
        and of the solver tables.
        """
        return json.dumps(scenario.to_dict()["hardware"], sort_keys=True)

    # Batching layers -----------------------------------------------------------

    def prime_wafer(self, wafer: WaferScaleChip) -> RouteTables:
        """Enable route memoisation on ``wafer`` (idempotent per instance)."""
        tables = self._route_tables.get(id(wafer))
        if tables is None:
            tables = wafer.topology.enable_route_tables()
            self._route_tables[id(wafer)] = tables
            # Keep the wafer alive so the id() key cannot be recycled.
            self._wafers.append(wafer)
        return tables

    def report_cache_for(self, scenario: "Scenario") -> ReportCache:
        """The report cache of the scenario's hardware group."""
        key = self.hardware_key(scenario)
        cache = self._report_caches.get(key)
        if cache is None:
            cache = ReportCache()
            self._report_caches[key] = cache
        return cache

    def tables_for(
        self,
        scenario: "Scenario",
        model: ModelConfig,
        candidates: Sequence[ParallelSpec],
    ) -> CostTables:
        """Cost tables for one solve, shared across the portfolio.

        The first solve of a (hardware, model) pair builds the tables; later
        solves reuse them outright when the candidate list matches, or as a
        :meth:`CostTables.subset` gather when the list only narrows (e.g. a
        ``max_candidates`` axis). A candidate list the stored tables do not
        cover falls back to a fresh build, which then replaces the stored
        tables when it is the larger problem.
        """
        key = (self.hardware_key(scenario), model)
        wanted = list(candidates)
        parent = self._solver_tables.get(key)
        if parent is not None:
            if parent.candidates == wanted:
                self.tables_hits += 1
                return parent
            if all(spec in parent.spec_index for spec in wanted):
                self.tables_hits += 1
                return parent.subset(wanted)
        self.tables_misses += 1
        graph = representative_layer_graph(model)
        config = scenario.hardware.resolve_simulator() or SimulatorConfig()
        # Same analytic hop factor the unbatched solve derives from its
        # wafer's fabric — required for batched == per-point row parity.
        hop_factor = scenario.hardware.resolve_topology().collective_hop_factor()
        tables = CostTables(
            graph, wanted, scenario.hardware.resolve_config(), config,
            hop_factor=hop_factor)
        if parent is None or len(wanted) > len(parent.candidates):
            self._solver_tables[key] = tables
        return tables

    # Telemetry -----------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Aggregated plain-JSON counters across every batching layer."""
        reports = {"hits": 0, "misses": 0, "entries": 0}
        for cache in self._report_caches.values():
            for field, value in cache.stats().items():
                reports[field] += value
        routes = {"hits": 0, "misses": 0, "entries": 0}
        for tables in self._route_tables.values():
            for field, value in tables.stats().items():
                routes[field] += value
        return {
            "report_cache": reports,
            "route_tables": routes,
            "solver_tables": {
                "hits": self.tables_hits,
                "misses": self.tables_misses,
                "entries": len(self._solver_tables),
            },
            "hardware_groups": len(self._report_caches),
        }


class BatchedPlanService(PlanService):
    """A :class:`PlanService` that batches work across portfolio points.

    Drop-in for the base service — same entry points, bit-identical results
    — with three extra sharing layers (routes, reports, solver cost tables)
    held in a :class:`PortfolioTables`. Used by ``run_portfolio_local`` for
    in-process sweeps; pass ``batched=False`` there to get the per-point
    baseline this service is benchmarked against.
    """

    def __init__(
        self,
        plan_cache: Optional[PlanCache] = None,
        tables: Optional[PortfolioTables] = None,
    ) -> None:
        super().__init__(plan_cache=plan_cache)
        self.tables = tables if tables is not None else PortfolioTables()

    def wafer_for(self, hardware) -> WaferScaleChip:
        wafer = super().wafer_for(hardware)
        self.tables.prime_wafer(wafer)
        return wafer

    def _report_cache_for(self, scenario: "Scenario") -> ReportCache:
        return self.tables.report_cache_for(scenario)

    def _tables_provider_for(self, scenario: "Scenario"):
        tables = self.tables

        def provider(model: ModelConfig,
                     candidates: Sequence[ParallelSpec]) -> CostTables:
            return tables.tables_for(scenario, model, candidates)

        return provider

    def stats(self) -> Dict[str, object]:
        payload = super().stats()
        payload["portfolio"] = self.tables.stats()
        return payload
