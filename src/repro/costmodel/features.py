"""Feature extraction shared by the learned cost models.

The learned models predict latencies of three categories of measurements
(Fig. 21): single-operator computation, collective/point-to-point
communication, and computation overlapped with TATP streaming. A sample is
described by the operator dimensions, the parallel degrees, and the derived
volumes (FLOPs, bytes), log-transformed so the MLP sees well-conditioned
inputs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

#: Ordered feature names; the arrays produced by :func:`sample_features` follow
#: this order.
FEATURE_NAMES: List[str] = [
    "log_batch",
    "log_seq",
    "log_hidden",
    "log_intermediate",
    "log_flops",
    "log_bytes",
    "log_group_size",
    "log_tatp",
    "log_steps",
    "is_collective",
    "is_overlap",
]


def _log1p(value: float) -> float:
    return math.log1p(max(value, 0.0))


def sample_features(sample: Dict[str, float]) -> np.ndarray:
    """Convert a raw sample dictionary into the model feature vector.

    Args:
        sample: dictionary with (a superset of) the keys ``batch``, ``seq``,
            ``hidden``, ``intermediate``, ``flops``, ``bytes``, ``group_size``,
            ``tatp``, ``steps``, ``is_collective`` and ``is_overlap``; missing
            keys default to zero.

    Returns:
        A float64 vector ordered as :data:`FEATURE_NAMES`.
    """
    return np.array([
        _log1p(sample.get("batch", 0.0)),
        _log1p(sample.get("seq", 0.0)),
        _log1p(sample.get("hidden", 0.0)),
        _log1p(sample.get("intermediate", 0.0)),
        _log1p(sample.get("flops", 0.0)),
        _log1p(sample.get("bytes", 0.0)),
        _log1p(sample.get("group_size", 0.0)),
        _log1p(sample.get("tatp", 0.0)),
        _log1p(sample.get("steps", 0.0)),
        float(sample.get("is_collective", 0.0)),
        float(sample.get("is_overlap", 0.0)),
    ], dtype=np.float64)


def feature_matrix(samples: Sequence[Dict[str, float]]) -> np.ndarray:
    """Stack feature vectors of many samples into a (n, d) matrix."""
    if not samples:
        return np.empty((0, len(FEATURE_NAMES)))
    return np.vstack([sample_features(sample) for sample in samples])
