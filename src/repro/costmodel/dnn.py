"""Numpy MLP cost model (the paper's DNN-based cost model).

A small two-hidden-layer multi-layer perceptron trained with mini-batch Adam
on log-latency targets. Inference takes a few microseconds per query, which is
the property the paper relies on to make the DLWS search 100-1000x faster than
re-running the simulator for every candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costmodel.dataset import CostSample
from repro.costmodel.features import feature_matrix


@dataclass
class _AdamState:
    """Per-parameter Adam optimiser state."""

    m: np.ndarray
    v: np.ndarray


class MLPCostModel:
    """Two-hidden-layer MLP regressor over log-latency targets.

    Args:
        hidden_sizes: widths of the two hidden layers.
        learning_rate: Adam learning rate.
        epochs: training epochs over the dataset.
        batch_size: mini-batch size.
        seed: RNG seed for weight initialisation and shuffling.
    """

    def __init__(
        self,
        hidden_sizes: Tuple[int, int] = (96, 48),
        learning_rate: float = 2e-3,
        epochs: int = 300,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        self.hidden_sizes = hidden_sizes
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._feature_mean: Optional[np.ndarray] = None
        self._feature_std: Optional[np.ndarray] = None
        self._fitted = False

    # Training ---------------------------------------------------------------------

    def fit(self, samples: Sequence[CostSample]) -> "MLPCostModel":
        """Train the model on labelled samples and return ``self``."""
        if not samples:
            raise ValueError("cannot fit on an empty dataset")
        features = feature_matrix([sample.inputs for sample in samples])
        targets = np.log(np.maximum(
            np.array([sample.latency for sample in samples]), 1e-12))
        self._feature_mean = features.mean(axis=0)
        self._feature_std = features.std(axis=0) + 1e-8
        inputs = (features - self._feature_mean) / self._feature_std

        rng = np.random.default_rng(self.seed)
        sizes = [inputs.shape[1], *self.hidden_sizes, 1]
        self._weights = [
            rng.normal(0.0, np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self._biases = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        adam_w = [_AdamState(np.zeros_like(w), np.zeros_like(w)) for w in self._weights]
        adam_b = [_AdamState(np.zeros_like(b), np.zeros_like(b)) for b in self._biases]

        step = 0
        num_samples = inputs.shape[0]
        for _ in range(self.epochs):
            order = rng.permutation(num_samples)
            for start in range(0, num_samples, self.batch_size):
                batch_idx = order[start:start + self.batch_size]
                step += 1
                grads_w, grads_b = self._gradients(
                    inputs[batch_idx], targets[batch_idx])
                self._adam_update(grads_w, grads_b, adam_w, adam_b, step)
        self._fitted = True
        return self

    def _forward(self, inputs: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        activations = [inputs]
        hidden = inputs
        for index, (weight, bias) in enumerate(zip(self._weights, self._biases)):
            hidden = hidden @ weight + bias
            if index < len(self._weights) - 1:
                hidden = np.maximum(hidden, 0.0)  # ReLU
            activations.append(hidden)
        return hidden.ravel(), activations

    def _gradients(
        self, inputs: np.ndarray, targets: np.ndarray
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        predictions, activations = self._forward(inputs)
        batch = inputs.shape[0]
        delta = (predictions - targets).reshape(-1, 1) * (2.0 / batch)
        grads_w: List[np.ndarray] = [np.zeros_like(w) for w in self._weights]
        grads_b: List[np.ndarray] = [np.zeros_like(b) for b in self._biases]
        for layer in reversed(range(len(self._weights))):
            grads_w[layer] = activations[layer].T @ delta
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = delta @ self._weights[layer].T
                delta *= (activations[layer] > 0.0)
        return grads_w, grads_b

    def _adam_update(
        self,
        grads_w: List[np.ndarray],
        grads_b: List[np.ndarray],
        adam_w: List[_AdamState],
        adam_b: List[_AdamState],
        step: int,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        for params, grads, states in (
            (self._weights, grads_w, adam_w),
            (self._biases, grads_b, adam_b),
        ):
            for index, (param, grad, state) in enumerate(zip(params, grads, states)):
                state.m = beta1 * state.m + (1 - beta1) * grad
                state.v = beta2 * state.v + (1 - beta2) * grad ** 2
                m_hat = state.m / (1 - beta1 ** step)
                v_hat = state.v / (1 - beta2 ** step)
                params[index] = param - self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

    # Inference ---------------------------------------------------------------------

    def predict(self, samples: Sequence[CostSample]) -> np.ndarray:
        """Predict latencies (seconds) for labelled or unlabelled samples."""
        return self.predict_inputs([sample.inputs for sample in samples])

    def predict_inputs(self, inputs: Sequence[Dict[str, float]]) -> np.ndarray:
        """Predict latencies from raw feature dictionaries."""
        if not self._fitted:
            raise RuntimeError("the model must be fitted before predicting")
        features = feature_matrix(list(inputs))
        normalized = (features - self._feature_mean) / self._feature_std
        log_latency, _ = self._forward(normalized)
        return np.exp(log_latency)

    def predict_one(self, inputs: Dict[str, float]) -> float:
        """Predict the latency of a single configuration."""
        return float(self.predict_inputs([inputs])[0])
