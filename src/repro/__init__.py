"""TEMP reproduction: memory-efficient physical-aware tensor partition-mapping
for wafer-scale chips (HPCA 2026).

Public API overview
-------------------

Hardware substrate
    :class:`repro.hardware.WaferScaleChip`, :class:`repro.hardware.WaferConfig`,
    :class:`repro.hardware.MultiWaferSystem`, :class:`repro.hardware.GPUCluster`,
    :class:`repro.hardware.FaultModel`.

Workloads
    :func:`repro.workloads.get_model`, :func:`repro.workloads.build_model_graph`,
    :class:`repro.workloads.TrainingStep`.

Parallelism
    :class:`repro.parallelism.ParallelSpec`, :func:`repro.parallelism.analyze_model`,
    :func:`repro.parallelism.bidirectional_schedule` (TATP, Algorithm 1),
    :func:`repro.parallelism.candidate_specs`.

Mapping
    :func:`repro.mapping.get_engine` ("smap", "gmap", "tcme"),
    :class:`repro.mapping.TCMEEngine`.

Simulation
    :class:`repro.simulation.WaferSimulator`, :class:`repro.simulation.SimulatorConfig`.

Solver
    :class:`repro.solver.DualLevelWaferSolver`.

Scenario API (the blessed request/response surface)
    :class:`repro.api.Scenario` (:class:`repro.api.WorkloadSpec` /
    :class:`repro.api.HardwareSpec` / :class:`repro.api.SolverSpec`),
    :class:`repro.api.PlanService` with ``evaluate(scenario) -> PlanResult``
    and ``solve(scenario) -> SolverOutcome``; ``python -m repro plan`` is the
    CLI front end.

Plan server (batched, cached, concurrent Scenario serving)
    :class:`repro.server.PlanScheduler` (dedup + micro-batching over a
    persistent worker pool), :class:`repro.server.ResultStore` (disk-backed,
    keyed by :meth:`repro.api.Scenario.cache_key`),
    :class:`repro.server.PlanServer` / :class:`repro.server.PlanClient`
    (``repro serve`` / ``repro submit``).

Framework (deprecated loose-kwargs entry points)
    :class:`repro.core.TEMP`, :func:`repro.core.evaluate_baseline`,
    :func:`repro.core.evaluate_multiwafer`, :func:`repro.core.evaluate_with_faults`.
"""

from repro.core.framework import TEMP, evaluate_baseline
from repro.api.scenario import (
    HardwareSpec,
    Scenario,
    ScenarioError,
    SolverSpec,
    WorkloadSpec,
)
from repro.api.service import PlanResult, PlanService, SolverOutcome
from repro.hardware.wafer import WaferScaleChip
from repro.hardware.config import WaferConfig, default_wafer_config
from repro.parallelism.spec import ParallelSpec
from repro.parallelism.strategies import analyze_model
from repro.simulation.simulator import WaferSimulator
from repro.simulation.config import SimulatorConfig
from repro.workloads.models import get_model, list_models

__version__ = "0.1.0"

__all__ = [
    "Scenario",
    "ScenarioError",
    "WorkloadSpec",
    "HardwareSpec",
    "SolverSpec",
    "PlanService",
    "PlanResult",
    "SolverOutcome",
    "TEMP",
    "evaluate_baseline",
    "WaferScaleChip",
    "WaferConfig",
    "default_wafer_config",
    "ParallelSpec",
    "analyze_model",
    "WaferSimulator",
    "SimulatorConfig",
    "get_model",
    "list_models",
    "__version__",
]
