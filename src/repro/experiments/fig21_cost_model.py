"""Fig. 21: accuracy of the DNN-based cost model.

500 test cases per category (operator computation, communication, overlapped
execution) are predicted by the DNN cost model and by a multivariate
linear-regression baseline; the figure reports the correlation and relative
error of each. The DNN reaches ~4-5% error at correlation > 0.98 while the
regression sits at 10-15% error, and a single DNN query takes microseconds —
the speedup that makes the DLWS search practical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

from repro.api.scenario import Scenario, SolverSpec
from repro.costmodel.dataset import generate_dataset
from repro.costmodel.dnn import MLPCostModel
from repro.costmodel.evaluation import ModelAccuracy, evaluate_model
from repro.costmodel.regression import LinearCostModel
from repro.runner.registry import register


def scenario_for_validation(train_samples: int, test_samples: int,
                            epochs: int, seed: int) -> Scenario:
    """The :class:`Scenario` of the cost-model validation cell.

    The study has no plan request of its own — it validates the predictors
    the solver uses — so the scenario contributes the deterministic seed
    (and round-trips through the registry serde test like every figure's).
    """
    return Scenario(solver=SolverSpec(seed=seed))


@dataclass
class CostModelStudy:
    """Accuracy of both cost models per category, plus query latency."""

    dnn_accuracy: Dict[str, ModelAccuracy] = field(default_factory=dict)
    regression_accuracy: Dict[str, ModelAccuracy] = field(default_factory=dict)
    dnn_query_seconds: float = 0.0
    training_samples: int = 0
    test_samples: int = 0

    def dnn_max_error(self) -> float:
        """Worst relative error of the DNN model across categories."""
        if not self.dnn_accuracy:
            return 0.0
        return max(acc.relative_error for acc in self.dnn_accuracy.values())

    def regression_max_error(self) -> float:
        """Worst relative error of the regression baseline across categories."""
        if not self.regression_accuracy:
            return 0.0
        return max(acc.relative_error for acc in self.regression_accuracy.values())

    def dnn_min_correlation(self) -> float:
        """Lowest correlation of the DNN model across categories."""
        if not self.dnn_accuracy:
            return 0.0
        return min(acc.correlation for acc in self.dnn_accuracy.values())


def run_cost_model_validation(
    train_samples_per_category: int = 400,
    test_samples_per_category: int = 500,
    epochs: int = 200,
    seed: int = 0,
) -> CostModelStudy:
    """Train both cost models and evaluate them on held-out samples."""
    train = generate_dataset(
        num_samples=train_samples_per_category, seed=seed)
    test = generate_dataset(
        num_samples=test_samples_per_category, seed=seed + 1)

    dnn = MLPCostModel(epochs=epochs, seed=seed).fit(train)
    regression = LinearCostModel().fit(train)

    start = time.perf_counter()
    dnn.predict(test[: min(100, len(test))])
    elapsed = time.perf_counter() - start
    per_query = elapsed / min(100, len(test))

    return CostModelStudy(
        dnn_accuracy=evaluate_model(dnn, test),
        regression_accuracy=evaluate_model(regression, test),
        dnn_query_seconds=per_query,
        training_samples=len(train),
        test_samples=len(test),
    )


@register(
    figure="fig21",
    paper="Fig. 21",
    title="Accuracy of the DNN cost model vs linear regression",
    default_grid=[{"train_samples": 400, "test_samples": 500, "epochs": 200,
                   "seed": 0}],
    reduced_grid=[{"train_samples": 60, "test_samples": 80, "epochs": 40,
                   "seed": 0}],
    schema=("train_samples", "test_samples", "epochs", "seed", "category",
            "predictor", "correlation", "relative_error"),
    entrypoints=("run_cost_model_validation",),
    description="Both cost models are trained and evaluated on held-out "
                "samples per category (computation / communication / "
                "overlap); one row per (category, predictor). The query "
                "latency is measured wall-clock and therefore kept out of "
                "the rows to preserve determinism.",
    scenario=scenario_for_validation,
)
def cost_model_cell(ctx, train_samples, test_samples, epochs, seed):
    """The single training/evaluation cell of Fig. 21."""
    scenario = scenario_for_validation(train_samples, test_samples, epochs,
                                       seed)
    study = run_cost_model_validation(
        train_samples_per_category=train_samples,
        test_samples_per_category=test_samples,
        epochs=epochs,
        seed=scenario.solver.seed,
    )
    rows = []
    for predictor, accuracies in (("dnn", study.dnn_accuracy),
                                  ("regression", study.regression_accuracy)):
        for category in sorted(accuracies):
            accuracy = accuracies[category]
            rows.append({
                "category": category,
                "predictor": predictor,
                "correlation": accuracy.correlation,
                "relative_error": accuracy.relative_error,
            })
    return rows
