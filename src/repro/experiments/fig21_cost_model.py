"""Fig. 21: accuracy of the DNN-based cost model.

500 test cases per category (operator computation, communication, overlapped
execution) are predicted by the DNN cost model and by a multivariate
linear-regression baseline; the figure reports the correlation and relative
error of each. The DNN reaches ~4-5% error at correlation > 0.98 while the
regression sits at 10-15% error, and a single DNN query takes microseconds —
the speedup that makes the DLWS search practical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.costmodel.dataset import generate_dataset
from repro.costmodel.dnn import MLPCostModel
from repro.costmodel.evaluation import ModelAccuracy, evaluate_model
from repro.costmodel.regression import LinearCostModel


@dataclass
class CostModelStudy:
    """Accuracy of both cost models per category, plus query latency."""

    dnn_accuracy: Dict[str, ModelAccuracy] = field(default_factory=dict)
    regression_accuracy: Dict[str, ModelAccuracy] = field(default_factory=dict)
    dnn_query_seconds: float = 0.0
    training_samples: int = 0
    test_samples: int = 0

    def dnn_max_error(self) -> float:
        """Worst relative error of the DNN model across categories."""
        if not self.dnn_accuracy:
            return 0.0
        return max(acc.relative_error for acc in self.dnn_accuracy.values())

    def regression_max_error(self) -> float:
        """Worst relative error of the regression baseline across categories."""
        if not self.regression_accuracy:
            return 0.0
        return max(acc.relative_error for acc in self.regression_accuracy.values())

    def dnn_min_correlation(self) -> float:
        """Lowest correlation of the DNN model across categories."""
        if not self.dnn_accuracy:
            return 0.0
        return min(acc.correlation for acc in self.dnn_accuracy.values())


def run_cost_model_validation(
    train_samples_per_category: int = 400,
    test_samples_per_category: int = 500,
    epochs: int = 200,
    seed: int = 0,
) -> CostModelStudy:
    """Train both cost models and evaluate them on held-out samples."""
    train = generate_dataset(
        num_samples=train_samples_per_category, seed=seed)
    test = generate_dataset(
        num_samples=test_samples_per_category, seed=seed + 1)

    dnn = MLPCostModel(epochs=epochs, seed=seed).fit(train)
    regression = LinearCostModel().fit(train)

    start = time.perf_counter()
    dnn.predict(test[: min(100, len(test))])
    elapsed = time.perf_counter() - start
    per_query = elapsed / min(100, len(test))

    return CostModelStudy(
        dnn_accuracy=evaluate_model(dnn, test),
        regression_accuracy=evaluate_model(regression, test),
        dnn_query_seconds=per_query,
        training_samples=len(train),
        test_samples=len(test),
    )
