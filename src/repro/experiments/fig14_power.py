"""Fig. 14: power breakdown and power efficiency.

The same (scheme x engine) grid — and the same :class:`repro.api.Scenario`
per cell — as Fig. 13, but reporting the power decomposition (computation /
memory / communication) and the throughput-per-watt relative to each
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.service import PlanResult, PlanService
from repro.core.metrics import geometric_mean
from repro.costmodel.tables import PlanCache
from repro.experiments.fig13_overall import (
    FAST_MODELS,
    SYSTEMS,
    evaluate_system_result,
    scenario_for_system,
)
from repro.hardware.wafer import WaferScaleChip
from repro.runner.registry import register
from repro.simulation.config import SimulatorConfig
from repro.workloads.models import TABLE_II_MODELS


@dataclass
class PowerCell:
    """One (model, system) cell of Fig. 14."""

    model: str
    system: str
    oom: bool
    compute_watts: float
    dram_watts: float
    comm_watts: float
    total_watts: float
    power_efficiency: float
    energy_per_step: float = 0.0

    def breakdown(self) -> Dict[str, float]:
        """Power breakdown normalised to the total."""
        if self.total_watts <= 0:
            return {"compute": 0.0, "memory": 0.0, "communication": 0.0}
        return {
            "compute": self.compute_watts / self.total_watts,
            "memory": self.dram_watts / self.total_watts,
            "communication": self.comm_watts / self.total_watts,
        }


@dataclass
class PowerComparison:
    """All cells of Fig. 14."""

    cells: List[PowerCell] = field(default_factory=list)

    def cell(self, model: str, system: str) -> PowerCell:
        """Look up one cell."""
        for candidate in self.cells:
            if candidate.model == model and candidate.system == system:
                return candidate
        raise KeyError(f"no cell for model={model} system={system}")

    def systems(self) -> List[str]:
        """System labels in presentation order."""
        ordered: List[str] = []
        for cell in self.cells:
            if cell.system not in ordered:
                ordered.append(cell.system)
        return ordered

    def models(self) -> List[str]:
        """Model names in presentation order."""
        ordered: List[str] = []
        for cell in self.cells:
            if cell.model not in ordered:
                ordered.append(cell.model)
        return ordered

    def efficiency_gain_over(self, system: str) -> float:
        """Geometric-mean power-efficiency gain of TEMP over ``system``."""
        gains: List[float] = []
        for model in self.models():
            baseline = self.cell(model, system)
            temp = self.cell(model, "TEMP")
            if baseline.oom or temp.oom or baseline.power_efficiency <= 0:
                continue
            gains.append(temp.power_efficiency / baseline.power_efficiency)
        return geometric_mean(gains) if gains else 0.0

    def power_ratio_over(self, system: str) -> float:
        """Geometric-mean per-step energy ratio of TEMP relative to ``system``.

        The paper reports TEMP's "overall power consumption" at 88-99% of the
        baselines' alongside 1.2-1.9x throughput gains; those two statements
        are consistent when the quantity compared is the energy spent per
        training iteration, which is what this ratio uses.
        """
        ratios: List[float] = []
        for model in self.models():
            baseline = self.cell(model, system)
            temp = self.cell(model, "TEMP")
            if baseline.oom or temp.oom or baseline.energy_per_step <= 0:
                continue
            ratios.append(temp.energy_per_step / baseline.energy_per_step)
        return geometric_mean(ratios) if ratios else 0.0


def evaluate_power_system(
    model_name: str,
    system: str,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    plan_cache: Optional[PlanCache] = None,
    service: Optional[PlanService] = None,
) -> PowerCell:
    """Evaluate one (model, system) cell of the Fig. 14 grid."""
    result = evaluate_system_result(model_name, system, wafer=wafer,
                                    config=config, plan_cache=plan_cache,
                                    service=service)
    return _cell_from(model_name, system, PlanResult.from_baseline(result))


def run_power_comparison(
    models: Optional[Sequence[str]] = None,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    plan_cache: Optional[PlanCache] = None,
) -> PowerComparison:
    """Run the Fig. 14 grid (power breakdown + efficiency)."""
    model_names = list(models) if models is not None else list(TABLE_II_MODELS)
    service = PlanService(plan_cache=plan_cache)
    comparison = PowerComparison()
    for name in model_names:
        for system in SYSTEMS:
            comparison.cells.append(evaluate_power_system(
                name, system, wafer=wafer, config=config, service=service))
    return comparison


def _cell_from(model: str, system: str, result: PlanResult) -> PowerCell:
    return PowerCell(
        model=model,
        system=system,
        oom=result.oom,
        compute_watts=result.compute_watts,
        dram_watts=result.dram_watts,
        comm_watts=result.comm_watts,
        total_watts=result.total_watts,
        power_efficiency=result.power_efficiency,
        energy_per_step=result.energy_per_step,
    )


@register(
    figure="fig14",
    paper="Fig. 14",
    title="Power breakdown and power efficiency (7 systems x Table II)",
    default_grid={"model": list(TABLE_II_MODELS), "system": list(SYSTEMS)},
    reduced_grid={"model": list(FAST_MODELS), "system": list(SYSTEMS)},
    schema=("model", "system", "oom", "compute_watts", "dram_watts",
            "comm_watts", "total_watts", "power_efficiency",
            "energy_per_step"),
    entrypoints=("run_power_comparison",),
    description="The Fig. 13 grid re-read for power: the computation / "
                "memory / communication decomposition and the "
                "throughput-per-watt of every system.",
    scenario=scenario_for_system,
)
def power_cell(ctx, model, system):
    """One (model, system) cell of Fig. 14."""
    cell = evaluate_power_system(model, system, service=ctx.service)
    return [{
        "oom": cell.oom,
        "compute_watts": cell.compute_watts,
        "dram_watts": cell.dram_watts,
        "comm_watts": cell.comm_watts,
        "total_watts": cell.total_watts,
        "power_efficiency": cell.power_efficiency,
        "energy_per_step": cell.energy_per_step,
    }]
