"""§VIII-H: search-time comparison of the DLS algorithm vs exhaustive search.

The paper's dual-level search finds the optimal configuration in minutes,
more than 200x faster than the ILP formulation. This runner measures both the
wall-clock time and the number of cost-model evaluations of (a) the dual-level
DP + GA search and (b) an exhaustive joint enumeration (the ILP stand-in),
over the same representative-layer graph and candidate space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.api.scenario import Scenario, SolverSpec, WorkloadSpec
from repro.core.framework import downsample_specs
from repro.costmodel.tables import CostTables
from repro.hardware.config import default_wafer_config
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.baselines import BaselineScheme
from repro.runner.registry import register
from repro.simulation.config import SimulatorConfig
from repro.solver.dp import optimize_segments
from repro.solver.exhaustive import ExhaustiveSolver
from repro.solver.genetic import GeneticConfig, GeneticRefiner
from repro.solver.search_space import SearchSpace
from repro.workloads.models import get_model
from repro.workloads.transformer import representative_layer_graph


def scenario_for_search(model: str, max_candidates: int, exhaustive_cap: int,
                        ga_generations: int) -> Scenario:
    """The :class:`Scenario` of one search-time comparison cell.

    ``exhaustive_cap`` bounds only the exhaustive baseline, not the plan
    request, so it stays a cell parameter.
    """
    return Scenario(
        workload=WorkloadSpec(model=model),
        solver=SolverSpec(scheme="temp", engine="tcme",
                          max_candidates=max_candidates,
                          ga_generations=ga_generations),
    )


@dataclass
class SearchTimeResult:
    """Search time and quality of both solvers on one model."""

    model: str
    num_candidates: int
    num_operators: int
    dls_seconds: float
    dls_cost: float
    dls_evaluations: int
    exhaustive_seconds: float
    exhaustive_cost: float
    exhaustive_evaluations: int
    exhaustive_truncated: bool
    exhaustive_total_space: int

    @property
    def speedup(self) -> float:
        """Wall-clock speedup of the dual-level search over the exhaustive one."""
        if self.dls_seconds <= 0:
            return float("inf")
        return self.exhaustive_seconds / self.dls_seconds

    @property
    def projected_exhaustive_seconds(self) -> float:
        """Exhaustive time extrapolated to the full joint space."""
        if self.exhaustive_evaluations <= 0:
            return 0.0
        per_evaluation = self.exhaustive_seconds / self.exhaustive_evaluations
        return per_evaluation * self.exhaustive_total_space

    @property
    def projected_speedup(self) -> float:
        """DLS speedup against the full (untruncated) exhaustive search."""
        if self.dls_seconds <= 0:
            return float("inf")
        return self.projected_exhaustive_seconds / self.dls_seconds


def run_search_time_comparison(
    model_name: str = "gpt3-76b",
    num_dies: int = 32,
    max_candidates: int = 12,
    exhaustive_cap: int = 20000,
    config: Optional[SimulatorConfig] = None,
    ga_generations: int = 10,
) -> SearchTimeResult:
    """Compare the dual-level search against exhaustive enumeration."""
    config = config or SimulatorConfig()
    wafer_config = default_wafer_config()
    model = get_model(model_name)
    wafer = WaferScaleChip(wafer_config)

    space = SearchSpace(model=model, num_devices=num_dies,
                        scheme=BaselineScheme.TEMP)
    candidates = space.pruned_candidates(wafer_config)
    if not candidates:
        candidates = space.candidates()
    candidates = downsample_specs(candidates, max_candidates)

    graph = representative_layer_graph(model)

    # Dual-level search: DP followed by GA refinement, both levels reading the
    # same vectorized cost tables. Table construction is part of the timed
    # region — it is work the scalar implementation performed inside the DP.
    start = time.perf_counter()
    tables = CostTables(graph, candidates, wafer_config, config)
    dp_result = optimize_segments(graph, candidates, wafer_config, config,
                                  tables=tables)
    refiner = GeneticRefiner(
        graph, candidates, wafer_config, config,
        genetic_config=GeneticConfig(generations=ga_generations,
                                     population_size=12),
        tables=tables)
    ga_result = refiner.refine(initial_assignment=dp_result.assignment)
    dls_seconds = time.perf_counter() - start

    # Exhaustive (ILP stand-in), capped so the benchmark terminates.
    exhaustive = ExhaustiveSolver(wafer_config, config,
                                  max_evaluations=exhaustive_cap)
    exhaustive_result = exhaustive.search(graph, candidates)

    return SearchTimeResult(
        model=model_name,
        num_candidates=len(candidates),
        num_operators=graph.num_nodes,
        dls_seconds=dls_seconds,
        dls_cost=min(dp_result.total_cost, ga_result.cost),
        dls_evaluations=dp_result.evaluations + ga_result.evaluations,
        exhaustive_seconds=exhaustive_result.elapsed_seconds,
        exhaustive_cost=exhaustive_result.cost,
        exhaustive_evaluations=exhaustive_result.evaluations,
        exhaustive_truncated=exhaustive_result.truncated,
        exhaustive_total_space=ExhaustiveSolver.total_combinations(
            graph.num_nodes, len(candidates)),
    )


@register(
    figure="search_time",
    paper="§VIII-H",
    title="Search time: dual-level search vs exhaustive enumeration",
    default_grid=[{"model": "gpt3-76b", "max_candidates": 12,
                   "exhaustive_cap": 20000, "ga_generations": 10}],
    reduced_grid=[{"model": "gpt3-6.7b", "max_candidates": 6,
                   "exhaustive_cap": 2000, "ga_generations": 4}],
    schema=("model", "max_candidates", "exhaustive_cap", "ga_generations",
            "num_candidates", "num_operators", "dls_seconds", "dls_cost",
            "dls_evaluations", "exhaustive_seconds", "exhaustive_cost",
            "exhaustive_evaluations", "exhaustive_truncated",
            "exhaustive_total_space", "projected_speedup"),
    entrypoints=("run_search_time_comparison",),
    description="Wall-clock time and cost-model evaluation counts of the "
                "DP+GA dual-level search against a capped exhaustive joint "
                "enumeration (the ILP stand-in). Timing columns are "
                "wall-clock measurements and vary between runs.",
    scenario=scenario_for_search,
)
def search_time_cell(ctx, model, max_candidates, exhaustive_cap,
                     ga_generations):
    """The single timed comparison cell of §VIII-H."""
    scenario = scenario_for_search(model, max_candidates, exhaustive_cap,
                                   ga_generations)
    result = run_search_time_comparison(
        model_name=scenario.workload.model,
        max_candidates=scenario.solver.max_candidates,
        exhaustive_cap=exhaustive_cap,
        ga_generations=scenario.solver.ga_generations,
    )
    return [{
        "num_candidates": result.num_candidates,
        "num_operators": result.num_operators,
        "dls_seconds": result.dls_seconds,
        "dls_cost": result.dls_cost,
        "dls_evaluations": result.dls_evaluations,
        "exhaustive_seconds": result.exhaustive_seconds,
        "exhaustive_cost": result.exhaustive_cost,
        "exhaustive_evaluations": result.exhaustive_evaluations,
        "exhaustive_truncated": result.exhaustive_truncated,
        "exhaustive_total_space": result.exhaustive_total_space,
        "projected_speedup": result.projected_speedup,
    }]
