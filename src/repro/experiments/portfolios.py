"""Experiment grids re-expressed as registered portfolios.

Each builder here maps one registered figure's grid onto a
:class:`~repro.api.portfolio.Portfolio` whose expansion visits exactly the
scenarios the orchestrator path evaluates, in exactly the orchestrator's
row order; the paired row mappers reproduce the figure's manifest-row
columns from the served :class:`~repro.api.service.PlanResult` payloads.
``repro sweep fig13 --reduced`` therefore emits a manifest row-identical to
``repro run fig13 --reduced`` — pinned in ``tests/server/test_portfolio.py``
and the CI sweep smoke.

Four grid shapes are covered to prove the abstraction:

* ``fig13`` — a plain cartesian product (model x system), where the system
  axis swaps the whole solver section under a readable label;
* ``fig17`` — a zipped expansion enumerating pinned parallel configs, with
  annotation axes carrying the per-config row columns;
* ``fig19`` — a zipped product whose hardware (wafer count) is a function
  of the model axis;
* ``fabric_zoo`` — a zipped model x fabric grid whose topology axis swaps
  ``hardware.topology`` specs (``None`` for the default mesh) under fabric
  labels, with a model-dependent pinned solver riding along unrecorded.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.api.portfolio import Portfolio, PortfolioAxis, register_portfolio
from repro.experiments.fabric_zoo import (
    FABRICS,
    MODELS as FABRIC_ZOO_MODELS,
    FAST_MODELS as FABRIC_ZOO_FAST_MODELS,
    scenario_for_fabric,
)
from repro.experiments.fig13_overall import (
    FAST_MODELS,
    SYSTEMS,
    scenario_for_system,
)
from repro.experiments.fig17_parallel_configs import (
    FIG17_SEQ_LENGTHS,
    enumerate_configs,
    scenario_for_sweep,
)
from repro.experiments.fig19_multiwafer import (
    MULTI_WAFER_GRID,
    MULTI_WAFER_MODELS,
    scenario_for_multiwafer,
)
from repro.workloads.models import TABLE_II_MODELS


def _solver_doc(scenario) -> Dict[str, object]:
    """The solver section of one scenario document."""
    return scenario.to_dict()["solver"]


def fig13_row(params: Mapping[str, object],
              payload: Mapping[str, object]) -> Dict[str, object]:
    """One Fig. 13 manifest row from a served plan payload."""
    return {
        "spec": payload["spec"] if payload["spec"] else "-",
        "oom": payload["oom"],
        "step_time": payload["step_time"],
        "compute_time": payload["compute_time"],
        "comm_time": payload["comm_time"],
        "memory_gb": payload["memory_gb"],
        "throughput": payload["throughput"],
        "power_efficiency": payload["power_efficiency"],
    }


@register_portfolio(
    name="fig13",
    figure="fig13",
    row=fig13_row,
    description="Overall comparison: Table II models x 7 systems "
                "(cartesian, solver-section axis)")
def fig13_portfolio(reduced: bool = False) -> Portfolio:
    """Model x system product of Fig. 13 (model outermost, like the grid)."""
    models = list(FAST_MODELS if reduced else TABLE_II_MODELS)
    solver_docs = [_solver_doc(scenario_for_system(models[0], system))
                   for system in SYSTEMS]
    return Portfolio(
        name="fig13",
        description="Fig. 13 overall training-performance comparison",
        axes=(
            PortfolioAxis(name="model", path="workload.model",
                          values=tuple(models)),
            PortfolioAxis(name="system", path="solver",
                          values=tuple(solver_docs),
                          labels=tuple(SYSTEMS)),
        ),
    )


def fig17_row(params: Mapping[str, object],
              payload: Mapping[str, object]) -> Dict[str, object]:
    """One Fig. 17 manifest row from a served plan payload."""
    return {
        "throughput": payload["throughput"],
        "step_time": payload["step_time"],
        "memory_gb": payload["memory_gb"],
        "oom": payload["oom"],
    }


@register_portfolio(
    name="fig17",
    figure="fig17",
    row=fig17_row,
    description="Every (DP, TP, SP, TATP) configuration of Llama2 7B "
                "(zipped fixed-spec axis)")
def fig17_portfolio(reduced: bool = False) -> Portfolio:
    """Zipped enumeration of every pinned configuration of Fig. 17."""
    seq_lengths = [2048] if reduced else list(FIG17_SEQ_LENGTHS)
    columns: Dict[str, List[object]] = {
        "model": [], "seq_length": [], "config": [], "dp": [], "tp": [],
        "sp": [], "tatp": [], "workload": [], "solver": [],
    }
    for model in ["llama2-7b"]:
        for seq_length in seq_lengths:
            base = scenario_for_sweep(model, seq_length)
            resolved = base.workload.resolve()
            for spec in enumerate_configs(base.hardware.num_dies):
                if spec.tp > resolved.num_heads:
                    continue
                pinned = base.with_fixed_spec(spec).to_dict()
                columns["model"].append(model)
                columns["seq_length"].append(seq_length)
                columns["config"].append(
                    f"({spec.dp},{spec.tp},{spec.sp},{spec.tatp})")
                columns["dp"].append(spec.dp)
                columns["tp"].append(spec.tp)
                columns["sp"].append(spec.sp)
                columns["tatp"].append(spec.tatp)
                columns["workload"].append(pinned["workload"])
                columns["solver"].append(pinned["solver"])
    return Portfolio(
        name="fig17",
        description="Fig. 17 mixed-parallelism configuration sweep",
        expansion="zip",
        axes=(
            PortfolioAxis(name="model", values=tuple(columns["model"])),
            PortfolioAxis(name="seq_length",
                          values=tuple(columns["seq_length"])),
            PortfolioAxis(name="config", values=tuple(columns["config"])),
            PortfolioAxis(name="dp", values=tuple(columns["dp"])),
            PortfolioAxis(name="tp", values=tuple(columns["tp"])),
            PortfolioAxis(name="sp", values=tuple(columns["sp"])),
            PortfolioAxis(name="tatp", values=tuple(columns["tatp"])),
            PortfolioAxis(name="workload", path="workload", record=False,
                          values=tuple(columns["workload"])),
            PortfolioAxis(name="solver", path="solver", record=False,
                          values=tuple(columns["solver"])),
        ),
    )


def fabric_zoo_row(params: Mapping[str, object],
                   payload: Mapping[str, object]) -> Dict[str, object]:
    """One fabric-zoo manifest row from a served plan payload."""
    return {
        "spec": payload["spec"] if payload["spec"] else "-",
        "oom": payload["oom"],
        "step_time": payload["step_time"],
        "compute_time": payload["compute_time"],
        "comm_time": payload["comm_time"],
        "memory_gb": payload["memory_gb"],
        "throughput": payload["throughput"],
    }


@register_portfolio(
    name="fabric_zoo",
    figure="fabric_zoo",
    row=fabric_zoo_row,
    description="Topology zoo: models x registered interconnect fabrics "
                "(zipped, hardware.topology axis, pinned comm-heavy specs)")
def fabric_zoo_portfolio(reduced: bool = False) -> Portfolio:
    """Zipped model x fabric grid of the fabric-zoo study.

    The fabric axis swaps ``hardware.topology`` specs (``None`` keeps the
    default mesh) under the fabric's registry label; the pinned
    communication-heavy solver spec is a function of the model, so it rides
    along as an unrecorded zipped axis — the fig19 pattern.
    """
    models = list(FABRIC_ZOO_FAST_MODELS if reduced else FABRIC_ZOO_MODELS)
    columns: Dict[str, List[object]] = {
        "model": [], "fabric": [], "topology": [], "solver": [],
    }
    for model in models:
        for fabric in FABRICS:
            document = scenario_for_fabric(model, fabric).to_dict()
            columns["model"].append(model)
            columns["fabric"].append(fabric)
            columns["topology"].append(document["hardware"]["topology"])
            columns["solver"].append(document["solver"])
    return Portfolio(
        name="fabric_zoo",
        description="Topology-zoo fabric comparison study",
        expansion="zip",
        axes=(
            PortfolioAxis(name="model", path="workload.model",
                          values=tuple(columns["model"])),
            PortfolioAxis(name="fabric", path="hardware.topology",
                          values=tuple(columns["topology"]),
                          labels=tuple(columns["fabric"])),
            PortfolioAxis(name="solver", path="solver", record=False,
                          values=tuple(columns["solver"])),
        ),
    )


def fig19_row(params: Mapping[str, object],
              payload: Mapping[str, object]) -> Dict[str, object]:
    """One Fig. 19 manifest row from a served plan payload."""
    return {
        "num_wafers": payload["num_wafers"],
        "spec": payload["spec"] if payload["spec"] else "-",
        "pp_degree": payload["pp_degree"],
        "step_time": payload["step_time"],
        "compute_time": payload["compute_time"],
        "comm_time": payload["comm_time"],
        "bubble_time": payload["bubble_time"],
        "throughput": payload["throughput"],
        "oom": payload["oom"],
    }


@register_portfolio(
    name="fig19",
    figure="fig19",
    row=fig19_row,
    description="Multi-wafer scalability: pipelined models x 7 systems "
                "(zipped, model-dependent wafer count)")
def fig19_portfolio(reduced: bool = False) -> Portfolio:
    """Zipped model x system grid of Fig. 19.

    The wafer count rides along as an unrecorded hardware axis because it
    is a function of the model (GPT-3 175B spans two wafers, Grok-1 and
    Llama3 405B four, GPT-3 504B six) — exactly what a cartesian product
    cannot express.
    """
    models = ["gpt3-175b"] if reduced else list(MULTI_WAFER_MODELS)
    systems = [label for _, _, label in MULTI_WAFER_GRID]
    columns: Dict[str, List[object]] = {
        "model": [], "system": [], "solver": [], "num_wafers": [],
    }
    for model in models:
        for system in systems:
            document = scenario_for_multiwafer(model, system).to_dict()
            columns["model"].append(model)
            columns["system"].append(system)
            columns["solver"].append(document["solver"])
            columns["num_wafers"].append(document["hardware"]["num_wafers"])
    return Portfolio(
        name="fig19",
        description="Fig. 19 multi-wafer scalability study",
        expansion="zip",
        axes=(
            PortfolioAxis(name="model", path="workload.model",
                          values=tuple(columns["model"])),
            PortfolioAxis(name="system", path="solver",
                          values=tuple(columns["solver"]),
                          labels=tuple(columns["system"])),
            PortfolioAxis(name="num_wafers", path="hardware.num_wafers",
                          record=False,
                          values=tuple(columns["num_wafers"])),
        ),
    )
