"""Fig. 19: multi-wafer scalability.

Larger-than-one-wafer models (GPT-3 175B on two wafers, Grok-1 341B and
Llama3 405B on four, a 504B GPT-3 variant on six) are trained with pipeline
parallelism across wafers. The baselines are forced into high pipeline
degrees (and hence large bubbles) because they lack a wafer-tailored
parallelism; TEMP's TATP keeps the pipeline degree low and wins by 1.2-1.6x.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.scenario import HardwareSpec, Scenario, SolverSpec, WorkloadSpec
from repro.api.service import PlanService
from repro.costmodel.tables import PlanCache
from repro.parallelism.baselines import BaselineScheme
from repro.runner.registry import register
from repro.workloads.models import MULTI_WAFER_MODELS

#: The (scheme, engine, label) grid of Fig. 19 (same systems as Fig. 13).
MULTI_WAFER_GRID = [
    (BaselineScheme.MEGATRON1, "smap", "Mega+SMap"),
    (BaselineScheme.MEGATRON1, "gmap", "Mega+GMap"),
    (BaselineScheme.MESP, "smap", "MeSP+SMap"),
    (BaselineScheme.MESP, "gmap", "MeSP+GMap"),
    (BaselineScheme.FSDP, "smap", "FSDP+SMap"),
    (BaselineScheme.FSDP, "gmap", "FSDP+GMap"),
    (BaselineScheme.TEMP, "tcme", "TEMP"),
]

#: Label -> (scheme, engine) lookup of the Fig. 19 systems.
_SYSTEM_TABLE = {label: (scheme, engine)
                 for scheme, engine, label in MULTI_WAFER_GRID}


def scenario_for_multiwafer(model: str, system: str,
                            num_wafers: Optional[int] = None,
                            num_microbatches: int = 16) -> Scenario:
    """The :class:`Scenario` of one (model, system) cell of Fig. 19.

    ``num_wafers`` defaults to the paper's wafer count for the model
    (:data:`MULTI_WAFER_MODELS`).
    """
    try:
        scheme, engine = _SYSTEM_TABLE[system]
    except KeyError:
        known = ", ".join(label for _, _, label in MULTI_WAFER_GRID)
        raise KeyError(
            f"unknown system {system!r}; expected one of {known}") from None
    if num_wafers is None:
        num_wafers = MULTI_WAFER_MODELS[model]
    return Scenario(
        workload=WorkloadSpec(model=model),
        hardware=HardwareSpec(num_wafers=num_wafers,
                              num_microbatches=num_microbatches),
        solver=SolverSpec(scheme=scheme.value, engine=engine),
    )


@dataclass
class MultiWaferCell:
    """One (model, system) cell of Fig. 19."""

    model: str
    system: str
    num_wafers: int
    spec: str
    pp_degree: int
    step_time: float
    compute_time: float
    comm_time: float
    bubble_time: float
    throughput: float
    oom: bool


@dataclass
class MultiWaferStudy:
    """All cells of Fig. 19."""

    cells: List[MultiWaferCell] = field(default_factory=list)

    def cell(self, model: str, system: str) -> MultiWaferCell:
        """Look up one cell."""
        for candidate in self.cells:
            if candidate.model == model and candidate.system == system:
                return candidate
        raise KeyError(f"no cell for model={model} system={system}")

    def systems(self) -> List[str]:
        """System labels in presentation order."""
        ordered: List[str] = []
        for cell in self.cells:
            if cell.system not in ordered:
                ordered.append(cell.system)
        return ordered

    def models(self) -> List[str]:
        """Model names in presentation order."""
        ordered: List[str] = []
        for cell in self.cells:
            if cell.model not in ordered:
                ordered.append(cell.model)
        return ordered

    def temp_speedup(self, model: str, system: str) -> float:
        """TEMP speedup over ``system`` for ``model``."""
        baseline = self.cell(model, system)
        temp = self.cell(model, "TEMP")
        if temp.step_time <= 0 or baseline.oom:
            return 0.0
        return baseline.step_time / temp.step_time


def run_multiwafer_study(
    models: Optional[Dict[str, int]] = None,
    systems: Optional[Sequence[Tuple[BaselineScheme, str, str]]] = None,
    num_microbatches: int = 16,
    plan_cache: Optional[PlanCache] = None,
) -> MultiWaferStudy:
    """Run the Fig. 19 study.

    Args:
        models: mapping of model name -> wafer count (defaults to the paper's
            four models).
        systems: (scheme, engine, label) triples to evaluate.
        num_microbatches: pipeline microbatches per step.
        plan_cache: optional shared ``analyze_model`` memoisation.
    """
    model_map = dict(models) if models is not None else dict(MULTI_WAFER_MODELS)
    grid = list(systems) if systems is not None else list(MULTI_WAFER_GRID)
    service = PlanService(plan_cache=plan_cache)
    study = MultiWaferStudy()
    for name, num_wafers in model_map.items():
        for scheme, engine, label in grid:
            scenario = Scenario(
                workload=WorkloadSpec(model=name),
                hardware=HardwareSpec(num_wafers=num_wafers,
                                      num_microbatches=num_microbatches),
                solver=SolverSpec(scheme=scheme.value, engine=engine),
            )
            study.cells.append(evaluate_multiwafer_cell(
                scenario, label, service=service))
    return study


def evaluate_multiwafer_cell(
    scenario: Scenario,
    label: str,
    service: Optional[PlanService] = None,
) -> MultiWaferCell:
    """Evaluate one (model, system) scenario of Fig. 19."""
    service = service or PlanService()
    result = service.evaluate(scenario)
    return MultiWaferCell(
        model=result.model,
        system=label,
        num_wafers=result.num_wafers,
        spec=result.spec if result.spec else "-",
        pp_degree=result.pp_degree,
        step_time=result.step_time,
        compute_time=result.compute_time,
        comm_time=result.comm_time,
        bubble_time=result.bubble_time,
        throughput=result.throughput,
        oom=result.oom,
    )


@register(
    figure="fig19",
    paper="Fig. 19",
    title="Multi-wafer scalability (pipeline parallelism across wafers)",
    default_grid={"model": list(MULTI_WAFER_MODELS),
                  "system": [label for _, _, label in MULTI_WAFER_GRID]},
    reduced_grid={"model": ["gpt3-175b"],
                  "system": [label for _, _, label in MULTI_WAFER_GRID]},
    schema=("model", "system", "num_wafers", "spec", "pp_degree",
            "step_time", "compute_time", "comm_time", "bubble_time",
            "throughput", "oom"),
    entrypoints=("run_multiwafer_study",),
    description="Larger-than-one-wafer models are pipelined across 2-6 "
                "wafers; TEMP keeps the pipeline degree (and the bubble) "
                "low because TATP covers more parallelism inside a wafer.",
    scenario=scenario_for_multiwafer,
)
def multiwafer_cell(ctx, model, system):
    """One (model, system) cell of Fig. 19."""
    cell = evaluate_multiwafer_cell(
        scenario_for_multiwafer(model, system), system, service=ctx.service)
    return [{
        "num_wafers": cell.num_wafers,
        "spec": cell.spec,
        "pp_degree": cell.pp_degree,
        "step_time": cell.step_time,
        "compute_time": cell.compute_time,
        "comm_time": cell.comm_time,
        "bubble_time": cell.bubble_time,
        "throughput": cell.throughput,
        "oom": cell.oom,
    }]
