"""Fig. 15: wafer-scale chip vs GPU cluster.

A 32-die WSC is compared against a 4-node x 8-A100 cluster of matching
aggregate FP16 peak. The GPU cluster runs Megatron-3 (MeSP); the wafer runs
MeSP (mapped with GMap) and TEMP. The paper finds the GPU cluster slightly
ahead of the wafer when both run MeSP (hybrid parallelism doesn't fit the
mesh), while Wafer+TEMP overtakes both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.framework import TEMP, evaluate_baseline
from repro.hardware.gpu_cluster import GPUCluster
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.baselines import BaselineScheme, candidate_specs
from repro.parallelism.strategies import analyze_model
from repro.runner.registry import register
from repro.simulation.config import SimulatorConfig
from repro.simulation.gpu import GPUClusterSimulator
from repro.workloads.models import TABLE_II_MODELS, get_model

#: System labels of the figure.
FIG15_SYSTEMS = ["GPU+MeSP", "Wafer+MeSP", "Wafer+TEMP"]


@dataclass
class GPUComparisonRow:
    """Latency / throughput of one model on the three systems."""

    model: str
    gpu_mesp_time: float
    wafer_mesp_time: float
    wafer_temp_time: float
    gpu_mesp_throughput: float
    wafer_mesp_throughput: float
    wafer_temp_throughput: float

    @property
    def temp_speedup_over_gpu(self) -> float:
        """Wafer+TEMP speedup over GPU+MeSP."""
        if self.wafer_temp_time <= 0:
            return 0.0
        return self.gpu_mesp_time / self.wafer_temp_time

    @property
    def temp_speedup_over_wafer_mesp(self) -> float:
        """Wafer+TEMP speedup over Wafer+MeSP."""
        if self.wafer_temp_time <= 0:
            return 0.0
        return self.wafer_mesp_time / self.wafer_temp_time


def run_gpu_comparison(
    models: Optional[Sequence[str]] = None,
    config: Optional[SimulatorConfig] = None,
) -> List[GPUComparisonRow]:
    """Run the Fig. 15 comparison on a 32-die wafer vs a 32-GPU cluster."""
    model_names = list(models) if models is not None else list(TABLE_II_MODELS)
    config = config or SimulatorConfig()
    wafer = WaferScaleChip()
    cluster = GPUCluster()
    gpu_simulator = GPUClusterSimulator(cluster, config)

    rows: List[GPUComparisonRow] = []
    for name in model_names:
        model = get_model(name)
        gpu_time, gpu_throughput = _best_gpu_mesp(model, cluster, gpu_simulator)
        wafer_mesp = evaluate_baseline(
            BaselineScheme.MESP, "gmap", model, wafer=wafer, config=config)
        wafer_temp = TEMP(wafer=wafer, config=config).optimize(model)
        rows.append(GPUComparisonRow(
            model=name,
            gpu_mesp_time=gpu_time,
            wafer_mesp_time=(
                wafer_mesp.report.step_time if wafer_mesp.report else float("inf")),
            wafer_temp_time=(
                wafer_temp.report.step_time if wafer_temp.report else float("inf")),
            gpu_mesp_throughput=gpu_throughput,
            wafer_mesp_throughput=(
                wafer_mesp.report.throughput if wafer_mesp.report else 0.0),
            wafer_temp_throughput=(
                wafer_temp.report.throughput if wafer_temp.report else 0.0),
        ))
    return rows


def _best_gpu_mesp(
    model, cluster: GPUCluster, simulator: GPUClusterSimulator
) -> (float, float):
    """Best MeSP configuration on the GPU cluster (time, throughput)."""
    num_devices = cluster.num_devices
    specs = candidate_specs(
        BaselineScheme.MESP, num_devices,
        max_tp=min(8, model.num_heads))
    best_time = float("inf")
    best_throughput = 0.0
    for spec in specs:
        plan = analyze_model(model, spec, num_devices=num_devices)
        report = simulator.simulate(plan)
        if report.oom:
            checkpointed = analyze_model(
                model, spec, num_devices=num_devices,
                activation_checkpointing=True)
            report = simulator.simulate(checkpointed)
            if report.oom:
                continue
        if report.step_time < best_time:
            best_time = report.step_time
            best_throughput = report.throughput
    return best_time, best_throughput


@register(
    figure="fig15",
    paper="Fig. 15",
    title="Wafer-scale chip vs GPU cluster of matching aggregate peak",
    default_grid={"model": list(TABLE_II_MODELS),
                  "system": list(FIG15_SYSTEMS)},
    reduced_grid={"model": ["gpt3-6.7b"], "system": list(FIG15_SYSTEMS)},
    schema=("model", "system", "step_time", "throughput", "oom"),
    entrypoints=("run_gpu_comparison",),
    description="A 32-die wafer against a 4-node x 8-A100 cluster: the "
                "cluster runs Megatron-3 (MeSP), the wafer runs MeSP "
                "(GMap-mapped) and TEMP.",
)
def gpu_comparison_cell(ctx, model, system):
    """One (model, system) cell of Fig. 15."""
    model_config = get_model(model)
    config = ctx.config
    if system == "GPU+MeSP":
        cluster = GPUCluster()
        time_value, throughput = _best_gpu_mesp(
            model_config, cluster, GPUClusterSimulator(cluster, config))
        oom = time_value == float("inf")
        return [{"step_time": None if oom else time_value,
                 "throughput": throughput, "oom": oom}]
    if system == "Wafer+MeSP":
        result = evaluate_baseline(
            BaselineScheme.MESP, "gmap", model_config, wafer=ctx.wafer,
            config=config, plan_cache=ctx.plan_cache)
    elif system == "Wafer+TEMP":
        result = TEMP(wafer=ctx.wafer, config=config,
                      plan_cache=ctx.plan_cache).optimize(model_config)
    else:
        raise ValueError(f"unknown Fig. 15 system {system!r}")
    report = result.report
    return [{
        "step_time": report.step_time if report else None,
        "throughput": report.throughput if report else 0.0,
        "oom": result.oom,
    }]
