"""Fig. 15: wafer-scale chip vs GPU cluster.

A 32-die WSC is compared against a 4-node x 8-A100 cluster of matching
aggregate FP16 peak. The GPU cluster runs Megatron-3 (MeSP); the wafer runs
MeSP (mapped with GMap) and TEMP. The paper finds the GPU cluster slightly
ahead of the wafer when both run MeSP (hybrid parallelism doesn't fit the
mesh), while Wafer+TEMP overtakes both.

Every system is a :class:`repro.api.Scenario`: the GPU comparator sets
``HardwareSpec(platform="gpu_cluster")`` and the
:class:`~repro.api.service.PlanService` dispatches it to the cluster
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.api.scenario import HardwareSpec, Scenario, SolverSpec, WorkloadSpec
from repro.api.service import PlanService
from repro.runner.registry import register
from repro.workloads.models import TABLE_II_MODELS

#: System labels of the figure.
FIG15_SYSTEMS = ["GPU+MeSP", "Wafer+MeSP", "Wafer+TEMP"]


def scenario_for_gpu_system(model: str, system: str) -> Scenario:
    """The :class:`Scenario` of one (model, system) cell of Fig. 15."""
    workload = WorkloadSpec(model=model)
    if system == "GPU+MeSP":
        return Scenario(
            workload=workload,
            hardware=HardwareSpec(platform="gpu_cluster"),
            solver=SolverSpec(scheme="mesp", engine="cluster"),
        )
    if system == "Wafer+MeSP":
        return Scenario(workload=workload,
                        solver=SolverSpec(scheme="mesp", engine="gmap"))
    if system == "Wafer+TEMP":
        return Scenario(workload=workload, solver=SolverSpec.for_framework())
    known = ", ".join(FIG15_SYSTEMS)
    raise ValueError(f"unknown Fig. 15 system {system!r}; expected one of "
                     f"{known}")


@dataclass
class GPUComparisonRow:
    """Latency / throughput of one model on the three systems."""

    model: str
    gpu_mesp_time: float
    wafer_mesp_time: float
    wafer_temp_time: float
    gpu_mesp_throughput: float
    wafer_mesp_throughput: float
    wafer_temp_throughput: float

    @property
    def temp_speedup_over_gpu(self) -> float:
        """Wafer+TEMP speedup over GPU+MeSP."""
        if self.wafer_temp_time <= 0:
            return 0.0
        return self.gpu_mesp_time / self.wafer_temp_time

    @property
    def temp_speedup_over_wafer_mesp(self) -> float:
        """Wafer+TEMP speedup over Wafer+MeSP."""
        if self.wafer_temp_time <= 0:
            return 0.0
        return self.wafer_mesp_time / self.wafer_temp_time


def run_gpu_comparison(
    models: Optional[Sequence[str]] = None,
    service: Optional[PlanService] = None,
) -> List[GPUComparisonRow]:
    """Run the Fig. 15 comparison on a 32-die wafer vs a 32-GPU cluster."""
    model_names = list(models) if models is not None else list(TABLE_II_MODELS)
    service = service or PlanService()

    rows: List[GPUComparisonRow] = []
    for name in model_names:
        gpu = service.evaluate(scenario_for_gpu_system(name, "GPU+MeSP"))
        wafer_mesp = service.evaluate(
            scenario_for_gpu_system(name, "Wafer+MeSP"))
        wafer_temp = service.evaluate(
            scenario_for_gpu_system(name, "Wafer+TEMP"))
        rows.append(GPUComparisonRow(
            model=name,
            gpu_mesp_time=gpu.step_time,
            wafer_mesp_time=wafer_mesp.step_time,
            wafer_temp_time=wafer_temp.step_time,
            gpu_mesp_throughput=gpu.throughput,
            wafer_mesp_throughput=wafer_mesp.throughput,
            wafer_temp_throughput=wafer_temp.throughput,
        ))
    return rows


@register(
    figure="fig15",
    paper="Fig. 15",
    title="Wafer-scale chip vs GPU cluster of matching aggregate peak",
    default_grid={"model": list(TABLE_II_MODELS),
                  "system": list(FIG15_SYSTEMS)},
    reduced_grid={"model": ["gpt3-6.7b"], "system": list(FIG15_SYSTEMS)},
    schema=("model", "system", "step_time", "throughput", "oom"),
    entrypoints=("run_gpu_comparison",),
    description="A 32-die wafer against a 4-node x 8-A100 cluster: the "
                "cluster runs Megatron-3 (MeSP), the wafer runs MeSP "
                "(GMap-mapped) and TEMP.",
    scenario=scenario_for_gpu_system,
)
def gpu_comparison_cell(ctx, model, system):
    """One (model, system) cell of Fig. 15."""
    result = ctx.service.evaluate(scenario_for_gpu_system(model, system))
    payload = result.to_dict()  # serialises the OOM inf step time as null
    return [{
        "step_time": payload["step_time"],
        "throughput": result.throughput,
        "oom": result.oom,
    }]
