"""Fig. 20: fault tolerance.

Throughput is swept against (b) the link-fault rate and (c) the core-fault
rate. The paper finds a throughput cliff once roughly 35% of the links have
failed (the mesh loses the contiguous paths TATP and the collectives rely on),
but only graceful degradation under core faults because the framework
re-balances tensor partitions to the surviving compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.fault_tolerance import evaluate_with_faults
from repro.hardware.faults import FaultModel
from repro.parallelism.spec import ParallelSpec
from repro.runner.registry import register
from repro.simulation.config import SimulatorConfig
from repro.workloads.models import get_model

#: Link-fault rates swept in Fig. 20(b).
LINK_FAULT_RATES = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8]

#: Core-fault rates swept in Fig. 20(c).
CORE_FAULT_RATES = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25]


@dataclass
class FaultSweepPoint:
    """Normalised throughput at one fault rate."""

    fault_rate: float
    relative_throughput: float


@dataclass
class FaultToleranceStudy:
    """Both sweeps of Fig. 20."""

    link_sweep: List[FaultSweepPoint] = field(default_factory=list)
    core_sweep: List[FaultSweepPoint] = field(default_factory=list)

    def link_cliff_rate(self, threshold: float = 0.5) -> Optional[float]:
        """First link-fault rate at which throughput drops below ``threshold``."""
        for point in self.link_sweep:
            if point.relative_throughput < threshold:
                return point.fault_rate
        return None

    def core_degradation_at(self, rate: float) -> Optional[float]:
        """Relative throughput at a given core-fault rate (None if not swept)."""
        for point in self.core_sweep:
            if abs(point.fault_rate - rate) < 1e-9:
                return point.relative_throughput
        return None


def run_fault_tolerance(
    model_name: str = "llama2-7b",
    spec: Optional[ParallelSpec] = None,
    link_rates: Optional[Sequence[float]] = None,
    core_rates: Optional[Sequence[float]] = None,
    config: Optional[SimulatorConfig] = None,
    seed: int = 7,
) -> FaultToleranceStudy:
    """Run both fault sweeps of Fig. 20."""
    spec = spec or ParallelSpec(dp=4, tatp=8)
    link_rates = list(link_rates) if link_rates is not None else list(LINK_FAULT_RATES)
    core_rates = list(core_rates) if core_rates is not None else list(CORE_FAULT_RATES)
    config = config or SimulatorConfig()

    study = FaultToleranceStudy()
    for rate in link_rates:
        study.link_sweep.append(FaultSweepPoint(
            fault_rate=rate,
            relative_throughput=evaluate_fault_point(
                "link", rate, model_name=model_name, spec=spec,
                config=config, seed=seed),
        ))
    for rate in core_rates:
        study.core_sweep.append(FaultSweepPoint(
            fault_rate=rate,
            relative_throughput=evaluate_fault_point(
                "core", rate, model_name=model_name, spec=spec,
                config=config, seed=seed),
        ))
    return study


def evaluate_fault_point(
    sweep: str,
    rate: float,
    model_name: str = "llama2-7b",
    spec: Optional[ParallelSpec] = None,
    config: Optional[SimulatorConfig] = None,
    seed: int = 7,
) -> float:
    """Relative throughput at one fault rate of one sweep ("link"/"core")."""
    model = get_model(model_name)
    spec = spec or ParallelSpec(dp=4, tatp=8)
    if sweep == "link":
        fault_model = FaultModel.sample_link_faults(4, 8, rate, seed=seed)
    elif sweep == "core":
        fault_model = FaultModel.sample_core_faults(32, rate, seed=seed)
    else:
        raise ValueError(f"unknown fault sweep {sweep!r} (link/core)")
    result = evaluate_with_faults(model, spec, fault_model, config=config)
    return result.relative_throughput


@register(
    figure="fig20",
    paper="Fig. 20",
    title="Fault tolerance: throughput under link and core faults",
    default_grid=(
        [{"sweep": "link", "rate": rate} for rate in LINK_FAULT_RATES]
        + [{"sweep": "core", "rate": rate} for rate in CORE_FAULT_RATES]),
    reduced_grid=(
        [{"sweep": "link", "rate": rate} for rate in (0.0, 0.2, 0.5)]
        + [{"sweep": "core", "rate": rate} for rate in (0.0, 0.25)]),
    schema=("sweep", "rate", "relative_throughput"),
    entrypoints=("run_fault_tolerance",),
    description="Normalised throughput swept against the link-fault rate "
                "(cliff near 35%) and the core-fault rate (graceful "
                "degradation via adaptive re-partitioning); seeded fault "
                "sampling keeps the rows deterministic.",
)
def fault_point_cell(ctx, sweep, rate):
    """One (sweep, fault rate) point of Fig. 20."""
    return [{
        "relative_throughput": evaluate_fault_point(sweep, rate),
    }]
