"""Fig. 20: fault tolerance.

Throughput is swept against (b) the link-fault rate and (c) the core-fault
rate. The paper finds a throughput cliff once roughly 35% of the links have
failed (the mesh loses the contiguous paths TATP and the collectives rely on),
but only graceful degradation under core faults because the framework
re-balances tensor partitions to the surviving compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.fault_tolerance import evaluate_with_faults
from repro.hardware.faults import FaultModel
from repro.parallelism.spec import ParallelSpec
from repro.simulation.config import SimulatorConfig
from repro.workloads.models import get_model

#: Link-fault rates swept in Fig. 20(b).
LINK_FAULT_RATES = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8]

#: Core-fault rates swept in Fig. 20(c).
CORE_FAULT_RATES = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25]


@dataclass
class FaultSweepPoint:
    """Normalised throughput at one fault rate."""

    fault_rate: float
    relative_throughput: float


@dataclass
class FaultToleranceStudy:
    """Both sweeps of Fig. 20."""

    link_sweep: List[FaultSweepPoint] = field(default_factory=list)
    core_sweep: List[FaultSweepPoint] = field(default_factory=list)

    def link_cliff_rate(self, threshold: float = 0.5) -> Optional[float]:
        """First link-fault rate at which throughput drops below ``threshold``."""
        for point in self.link_sweep:
            if point.relative_throughput < threshold:
                return point.fault_rate
        return None

    def core_degradation_at(self, rate: float) -> Optional[float]:
        """Relative throughput at a given core-fault rate (None if not swept)."""
        for point in self.core_sweep:
            if abs(point.fault_rate - rate) < 1e-9:
                return point.relative_throughput
        return None


def run_fault_tolerance(
    model_name: str = "llama2-7b",
    spec: Optional[ParallelSpec] = None,
    link_rates: Optional[Sequence[float]] = None,
    core_rates: Optional[Sequence[float]] = None,
    config: Optional[SimulatorConfig] = None,
    seed: int = 7,
) -> FaultToleranceStudy:
    """Run both fault sweeps of Fig. 20."""
    model = get_model(model_name)
    spec = spec or ParallelSpec(dp=4, tatp=8)
    link_rates = list(link_rates) if link_rates is not None else list(LINK_FAULT_RATES)
    core_rates = list(core_rates) if core_rates is not None else list(CORE_FAULT_RATES)
    config = config or SimulatorConfig()

    study = FaultToleranceStudy()
    for rate in link_rates:
        fault_model = FaultModel.sample_link_faults(4, 8, rate, seed=seed)
        result = evaluate_with_faults(model, spec, fault_model, config=config)
        study.link_sweep.append(FaultSweepPoint(
            fault_rate=rate,
            relative_throughput=result.relative_throughput,
        ))
    for rate in core_rates:
        fault_model = FaultModel.sample_core_faults(32, rate, seed=seed)
        result = evaluate_with_faults(model, spec, fault_model, config=config)
        study.core_sweep.append(FaultSweepPoint(
            fault_rate=rate,
            relative_throughput=result.relative_throughput,
        ))
    return study
