"""Fig. 20: fault tolerance.

Throughput is swept against (b) the link-fault rate and (c) the core-fault
rate. The paper finds a throughput cliff once roughly 35% of the links have
failed (the mesh loses the contiguous paths TATP and the collectives rely on),
but only graceful degradation under core faults because the framework
re-balances tensor partitions to the surviving compute.

Each sweep point is a :class:`repro.api.Scenario` whose hardware spec sets
the fault rate and whose solver spec pins the stressed configuration
(``dp=4, tatp=8``) and the sampling seed; the
:class:`~repro.api.service.PlanService` dispatches it to the fault path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.api.scenario import HardwareSpec, Scenario, SolverSpec, WorkloadSpec
from repro.api.service import PlanService
from repro.parallelism.spec import ParallelSpec
from repro.runner.registry import register

#: Link-fault rates swept in Fig. 20(b).
LINK_FAULT_RATES = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8]

#: Core-fault rates swept in Fig. 20(c).
CORE_FAULT_RATES = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25]

#: Default model and seed of the paper's sweep.
_DEFAULT_MODEL = "llama2-7b"
_DEFAULT_SEED = 7


def scenario_for_fault(sweep: str, rate: float,
                       model: str = _DEFAULT_MODEL,
                       seed: int = _DEFAULT_SEED) -> Scenario:
    """The :class:`Scenario` of one (sweep, fault rate) point of Fig. 20."""
    if sweep == "link":
        hardware = HardwareSpec(link_fault_rate=rate)
    elif sweep == "core":
        hardware = HardwareSpec(core_fault_rate=rate)
    else:
        raise ValueError(f"unknown fault sweep {sweep!r} (link/core)")
    return Scenario(
        workload=WorkloadSpec(model=model),
        hardware=hardware,
        solver=SolverSpec(engine="tcme", seed=seed,
                          fixed_spec={"dp": 4, "tatp": 8}),
    )


@dataclass
class FaultSweepPoint:
    """Normalised throughput at one fault rate."""

    fault_rate: float
    relative_throughput: float


@dataclass
class FaultToleranceStudy:
    """Both sweeps of Fig. 20."""

    link_sweep: List[FaultSweepPoint] = field(default_factory=list)
    core_sweep: List[FaultSweepPoint] = field(default_factory=list)

    def link_cliff_rate(self, threshold: float = 0.5) -> Optional[float]:
        """First link-fault rate at which throughput drops below ``threshold``."""
        for point in self.link_sweep:
            if point.relative_throughput < threshold:
                return point.fault_rate
        return None

    def core_degradation_at(self, rate: float) -> Optional[float]:
        """Relative throughput at a given core-fault rate (None if not swept)."""
        for point in self.core_sweep:
            if abs(point.fault_rate - rate) < 1e-9:
                return point.relative_throughput
        return None


def run_fault_tolerance(
    model_name: str = _DEFAULT_MODEL,
    spec: Optional[ParallelSpec] = None,
    link_rates: Optional[Sequence[float]] = None,
    core_rates: Optional[Sequence[float]] = None,
    seed: int = _DEFAULT_SEED,
    service: Optional[PlanService] = None,
) -> FaultToleranceStudy:
    """Run both fault sweeps of Fig. 20."""
    link_rates = list(link_rates) if link_rates is not None else list(LINK_FAULT_RATES)
    core_rates = list(core_rates) if core_rates is not None else list(CORE_FAULT_RATES)
    service = service or PlanService()

    study = FaultToleranceStudy()
    for rate in link_rates:
        study.link_sweep.append(FaultSweepPoint(
            fault_rate=rate,
            relative_throughput=evaluate_fault_point(
                "link", rate, model_name=model_name, spec=spec, seed=seed,
                service=service),
        ))
    for rate in core_rates:
        study.core_sweep.append(FaultSweepPoint(
            fault_rate=rate,
            relative_throughput=evaluate_fault_point(
                "core", rate, model_name=model_name, spec=spec, seed=seed,
                service=service),
        ))
    return study


def evaluate_fault_point(
    sweep: str,
    rate: float,
    model_name: str = _DEFAULT_MODEL,
    spec: Optional[ParallelSpec] = None,
    seed: int = _DEFAULT_SEED,
    service: Optional[PlanService] = None,
) -> float:
    """Relative throughput at one fault rate of one sweep ("link"/"core")."""
    service = service or PlanService()
    scenario = scenario_for_fault(sweep, rate, model=model_name, seed=seed)
    if spec is not None:
        scenario = scenario.with_fixed_spec(spec)
    result = service.evaluate(scenario)
    if result.relative_throughput is None:
        raise ValueError(
            f"scenario {scenario.describe()} did not take the fault path")
    return result.relative_throughput


@register(
    figure="fig20",
    paper="Fig. 20",
    title="Fault tolerance: throughput under link and core faults",
    default_grid=(
        [{"sweep": "link", "rate": rate} for rate in LINK_FAULT_RATES]
        + [{"sweep": "core", "rate": rate} for rate in CORE_FAULT_RATES]),
    reduced_grid=(
        [{"sweep": "link", "rate": rate} for rate in (0.0, 0.2, 0.5)]
        + [{"sweep": "core", "rate": rate} for rate in (0.0, 0.25)]),
    schema=("sweep", "rate", "relative_throughput"),
    entrypoints=("run_fault_tolerance",),
    description="Normalised throughput swept against the link-fault rate "
                "(cliff near 35%) and the core-fault rate (graceful "
                "degradation via adaptive re-partitioning); seeded fault "
                "sampling keeps the rows deterministic.",
    scenario=scenario_for_fault,
)
def fault_point_cell(ctx, sweep, rate):
    """One (sweep, fault rate) point of Fig. 20."""
    return [{
        "relative_throughput": evaluate_fault_point(sweep, rate,
                                                    service=ctx.service),
    }]
