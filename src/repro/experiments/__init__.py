"""Experiment runners — one per table/figure of the paper's evaluation.

Every module exposes a ``run_*`` function returning plain dictionaries/lists so
the benchmark harness (``benchmarks/``) can both time the experiment and print
the same rows/series the paper reports, and so ``EXPERIMENTS.md`` can be
regenerated from the same source of truth.

| Figure | Runner |
|--------|--------|
| Fig. 4(b)/(c) | :mod:`repro.experiments.fig04_motivation` |
| Fig. 7(c)     | :mod:`repro.experiments.fig07_ring_utilization` |
| Fig. 9        | :mod:`repro.experiments.fig09_sweet_spot` |
| Fig. 13       | :mod:`repro.experiments.fig13_overall` |
| Fig. 14       | :mod:`repro.experiments.fig14_power` |
| Fig. 15       | :mod:`repro.experiments.fig15_gpu_comparison` |
| Fig. 16       | :mod:`repro.experiments.fig16_ablation` |
| Fig. 17       | :mod:`repro.experiments.fig17_parallel_configs` |
| Fig. 18       | :mod:`repro.experiments.fig18_convergence` |
| Fig. 19       | :mod:`repro.experiments.fig19_multiwafer` |
| Fig. 20       | :mod:`repro.experiments.fig20_fault_tolerance` |
| Fig. 21       | :mod:`repro.experiments.fig21_cost_model` |
| §VIII-H       | :mod:`repro.experiments.search_time` |
"""

from repro.experiments.fig13_overall import run_overall_comparison
from repro.experiments.fig16_ablation import run_ablation

__all__ = [
    "run_overall_comparison",
    "run_ablation",
]
