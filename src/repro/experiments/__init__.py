"""Experiment runners — one per table/figure of the paper's evaluation.

Every module registers its figure with the experiment registry
(:mod:`repro.runner.registry`) at import time: a cell runner, the
default/reduced parameter grids, and the manifest row schema. The registry
is the single source of truth — ``__all__`` below, the ``python -m repro``
CLI, the sweep orchestrator, and the generated ``EXPERIMENTS.md`` index are
all derived from it.

| Figure | Runner |
|--------|--------|
| Fig. 4(b)/(c) | :mod:`repro.experiments.fig04_motivation` |
| Fig. 7(c)     | :mod:`repro.experiments.fig07_ring_utilization` |
| Fig. 9        | :mod:`repro.experiments.fig09_sweet_spot` |
| Fig. 13       | :mod:`repro.experiments.fig13_overall` |
| Fig. 14       | :mod:`repro.experiments.fig14_power` |
| Fig. 15       | :mod:`repro.experiments.fig15_gpu_comparison` |
| Fig. 16       | :mod:`repro.experiments.fig16_ablation` |
| Fig. 17       | :mod:`repro.experiments.fig17_parallel_configs` |
| Fig. 18       | :mod:`repro.experiments.fig18_convergence` |
| Fig. 19       | :mod:`repro.experiments.fig19_multiwafer` |
| Fig. 20       | :mod:`repro.experiments.fig20_fault_tolerance` |
| Fig. 21       | :mod:`repro.experiments.fig21_cost_model` |
| §VIII-H       | :mod:`repro.experiments.search_time` |
| topology zoo  | :mod:`repro.experiments.fabric_zoo` |
"""

import importlib

# Importing the figure modules populates the registry.
from repro.experiments import fig04_motivation  # noqa: F401
from repro.experiments import fig07_ring_utilization  # noqa: F401
from repro.experiments import fig09_sweet_spot  # noqa: F401
from repro.experiments import fig13_overall  # noqa: F401
from repro.experiments import fig14_power  # noqa: F401
from repro.experiments import fig15_gpu_comparison  # noqa: F401
from repro.experiments import fig16_ablation  # noqa: F401
from repro.experiments import fig17_parallel_configs  # noqa: F401
from repro.experiments import fig18_convergence  # noqa: F401
from repro.experiments import fig19_multiwafer  # noqa: F401
from repro.experiments import fig20_fault_tolerance  # noqa: F401
from repro.experiments import fig21_cost_model  # noqa: F401
from repro.experiments import search_time  # noqa: F401
from repro.experiments import fabric_zoo  # noqa: F401

# Importing the portfolios module re-registers the sweepable grids with the
# portfolio registry (repro.api.portfolio).
from repro.experiments import portfolios  # noqa: F401
from repro.runner import registry as _registry


def _export_entrypoints():
    """Re-export every registered entrypoint.

    ``__all__`` is derived from the registry, so a newly registered figure's
    public runners become importable from ``repro.experiments`` without
    touching this file.
    """
    names = []
    for experiment in _registry.all_experiments():
        module = importlib.import_module(experiment.module)
        for name in experiment.entrypoints:
            globals()[name] = getattr(module, name)
            names.append(name)
    return sorted(names)


__all__ = _export_entrypoints()
