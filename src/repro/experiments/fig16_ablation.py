"""Fig. 16: ablation of TEMP's components.

Starting from the FSDP+SMap baseline (the only baseline that never OOMs), the
runner incrementally enables TEMP's two optimisations:

* **Base** — FSDP partitioning mapped by the naive sequential mapper,
* **Base+TATP** — the TATP-enabled configuration space, still mapped naively,
* **Base+TATP+TCME** — the full framework (TATP + traffic-conscious mapping).

The figure reports throughput normalised to the base for each model; the paper
finds ~1.21x from TATP and a further ~1.14x from TCME on average, growing with
model size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.framework import TEMP, evaluate_baseline
from repro.core.metrics import geometric_mean
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.baselines import BaselineScheme
from repro.simulation.config import SimulatorConfig
from repro.workloads.models import TABLE_II_MODELS, get_model

#: Ablation step labels, in order.
ABLATION_STEPS = ["base", "base+tatp", "base+tatp+tcme"]


@dataclass
class AblationRow:
    """Throughput of one model under the three ablation steps."""

    model: str
    throughput: Dict[str, float] = field(default_factory=dict)
    specs: Dict[str, str] = field(default_factory=dict)

    def normalized(self) -> Dict[str, float]:
        """Throughput normalised to the base configuration."""
        base = self.throughput.get("base", 0.0)
        if base <= 0:
            return {step: 0.0 for step in self.throughput}
        return {step: value / base for step, value in self.throughput.items()}


@dataclass
class AblationStudy:
    """All rows of Fig. 16."""

    rows: List[AblationRow] = field(default_factory=list)

    def average_gain(self, step: str, relative_to: str) -> float:
        """Geometric-mean throughput gain of ``step`` over ``relative_to``."""
        gains: List[float] = []
        for row in self.rows:
            if row.throughput.get(relative_to, 0.0) <= 0:
                continue
            gains.append(row.throughput[step] / row.throughput[relative_to])
        return geometric_mean(gains) if gains else 0.0


def run_ablation(
    models: Optional[Sequence[str]] = None,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
) -> AblationStudy:
    """Run the Fig. 16 ablation."""
    model_names = list(models) if models is not None else list(TABLE_II_MODELS)
    wafer = wafer or WaferScaleChip()
    study = AblationStudy()
    for name in model_names:
        model = get_model(name)
        row = AblationRow(model=name)

        base = evaluate_baseline(
            BaselineScheme.FSDP, "smap", model, wafer=wafer, config=config)
        row.throughput["base"] = base.report.throughput if base.report else 0.0
        row.specs["base"] = base.best_spec.label() if base.best_spec else "-"

        with_tatp = TEMP(wafer=wafer, config=config,
                         enable_tatp=True, enable_tcme=False).optimize(model)
        row.throughput["base+tatp"] = (
            with_tatp.report.throughput if with_tatp.report else 0.0)
        row.specs["base+tatp"] = (
            with_tatp.best_spec.label() if with_tatp.best_spec else "-")

        full = TEMP(wafer=wafer, config=config,
                    enable_tatp=True, enable_tcme=True).optimize(model)
        row.throughput["base+tatp+tcme"] = (
            full.report.throughput if full.report else 0.0)
        row.specs["base+tatp+tcme"] = (
            full.best_spec.label() if full.best_spec else "-")

        study.rows.append(row)
    return study
