"""Fig. 16: ablation of TEMP's components.

Starting from the FSDP+SMap baseline (the only baseline that never OOMs), the
runner incrementally enables TEMP's two optimisations:

* **Base** — FSDP partitioning mapped by the naive sequential mapper,
* **Base+TATP** — the TATP-enabled configuration space, still mapped naively,
* **Base+TATP+TCME** — the full framework (TATP + traffic-conscious mapping).

The figure reports throughput normalised to the base for each model; the paper
finds ~1.21x from TATP and a further ~1.14x from TCME on average, growing with
model size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.scenario import Scenario, SolverSpec, WorkloadSpec
from repro.api.service import PlanService
from repro.core.metrics import geometric_mean
from repro.costmodel.tables import PlanCache
from repro.hardware.wafer import WaferScaleChip
from repro.runner.registry import register
from repro.simulation.config import SimulatorConfig
from repro.workloads.models import TABLE_II_MODELS

#: Ablation step labels, in order.
ABLATION_STEPS = ["base", "base+tatp", "base+tatp+tcme"]

#: Step label -> the framework's two ablation switches.
_STEP_SWITCHES = {
    "base": (False, False),
    "base+tatp": (True, False),
    "base+tatp+tcme": (True, True),
}


def scenario_for_step(model: str, step: str) -> Scenario:
    """The :class:`Scenario` of one (model, ablation step) cell.

    Each step toggles the framework's two switches; the scheme/engine
    resolution lives in :meth:`SolverSpec.for_framework`.
    """
    try:
        enable_tatp, enable_tcme = _STEP_SWITCHES[step]
    except KeyError:
        known = ", ".join(ABLATION_STEPS)
        raise ValueError(
            f"unknown ablation step {step!r}; expected one of {known}"
        ) from None
    return Scenario(
        workload=WorkloadSpec(model=model),
        solver=SolverSpec.for_framework(enable_tatp=enable_tatp,
                                        enable_tcme=enable_tcme),
    )


@dataclass
class AblationRow:
    """Throughput of one model under the three ablation steps."""

    model: str
    throughput: Dict[str, float] = field(default_factory=dict)
    specs: Dict[str, str] = field(default_factory=dict)

    def normalized(self) -> Dict[str, float]:
        """Throughput normalised to the base configuration."""
        base = self.throughput.get("base", 0.0)
        if base <= 0:
            return {step: 0.0 for step in self.throughput}
        return {step: value / base for step, value in self.throughput.items()}


@dataclass
class AblationStudy:
    """All rows of Fig. 16."""

    rows: List[AblationRow] = field(default_factory=list)

    def average_gain(self, step: str, relative_to: str) -> float:
        """Geometric-mean throughput gain of ``step`` over ``relative_to``."""
        gains: List[float] = []
        for row in self.rows:
            if row.throughput.get(relative_to, 0.0) <= 0:
                continue
            gains.append(row.throughput[step] / row.throughput[relative_to])
        return geometric_mean(gains) if gains else 0.0


def evaluate_ablation_step(
    model_name: str,
    step: str,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    plan_cache: Optional[PlanCache] = None,
    service: Optional[PlanService] = None,
):
    """Evaluate one ablation step; returns the raw ``BaselineResult``.

    ``step`` is one of :data:`ABLATION_STEPS`.
    """
    if service is None:
        service = PlanService(plan_cache=plan_cache)
    return service.evaluate_raw(scenario_for_step(model_name, step),
                                wafer=wafer, config=config)


def run_ablation(
    models: Optional[Sequence[str]] = None,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    plan_cache: Optional[PlanCache] = None,
) -> AblationStudy:
    """Run the Fig. 16 ablation."""
    model_names = list(models) if models is not None else list(TABLE_II_MODELS)
    service = PlanService(plan_cache=plan_cache)
    study = AblationStudy()
    for name in model_names:
        row = AblationRow(model=name)
        for step in ABLATION_STEPS:
            result = evaluate_ablation_step(name, step, wafer=wafer,
                                            config=config, service=service)
            row.throughput[step] = (
                result.report.throughput if result.report else 0.0)
            row.specs[step] = (
                result.best_spec.label() if result.best_spec else "-")
        study.rows.append(row)
    return study


@register(
    figure="fig16",
    paper="Fig. 16",
    title="Ablation: base FSDP -> +TATP -> +TATP+TCME",
    default_grid={"model": list(TABLE_II_MODELS),
                  "step": list(ABLATION_STEPS)},
    reduced_grid={"model": ["llama3-70b"], "step": list(ABLATION_STEPS)},
    schema=("model", "step", "throughput", "spec", "oom"),
    entrypoints=("run_ablation",),
    description="TEMP's two optimisations are enabled incrementally on top "
                "of the FSDP+SMap baseline; the figure normalises each "
                "model's throughput to the base step.",
    scenario=scenario_for_step,
)
def ablation_cell(ctx, model, step):
    """One (model, ablation step) cell of Fig. 16."""
    result = evaluate_ablation_step(model, step, service=ctx.service)
    return [{
        "throughput": result.report.throughput if result.report else 0.0,
        "spec": result.best_spec.label() if result.best_spec else "-",
        "oom": result.oom,
    }]
