"""Fig. 16: ablation of TEMP's components.

Starting from the FSDP+SMap baseline (the only baseline that never OOMs), the
runner incrementally enables TEMP's two optimisations:

* **Base** — FSDP partitioning mapped by the naive sequential mapper,
* **Base+TATP** — the TATP-enabled configuration space, still mapped naively,
* **Base+TATP+TCME** — the full framework (TATP + traffic-conscious mapping).

The figure reports throughput normalised to the base for each model; the paper
finds ~1.21x from TATP and a further ~1.14x from TCME on average, growing with
model size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.framework import TEMP, evaluate_baseline
from repro.core.metrics import geometric_mean
from repro.costmodel.tables import PlanCache
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.baselines import BaselineScheme
from repro.runner.registry import register
from repro.simulation.config import SimulatorConfig
from repro.workloads.models import TABLE_II_MODELS, get_model

#: Ablation step labels, in order.
ABLATION_STEPS = ["base", "base+tatp", "base+tatp+tcme"]


@dataclass
class AblationRow:
    """Throughput of one model under the three ablation steps."""

    model: str
    throughput: Dict[str, float] = field(default_factory=dict)
    specs: Dict[str, str] = field(default_factory=dict)

    def normalized(self) -> Dict[str, float]:
        """Throughput normalised to the base configuration."""
        base = self.throughput.get("base", 0.0)
        if base <= 0:
            return {step: 0.0 for step in self.throughput}
        return {step: value / base for step, value in self.throughput.items()}


@dataclass
class AblationStudy:
    """All rows of Fig. 16."""

    rows: List[AblationRow] = field(default_factory=list)

    def average_gain(self, step: str, relative_to: str) -> float:
        """Geometric-mean throughput gain of ``step`` over ``relative_to``."""
        gains: List[float] = []
        for row in self.rows:
            if row.throughput.get(relative_to, 0.0) <= 0:
                continue
            gains.append(row.throughput[step] / row.throughput[relative_to])
        return geometric_mean(gains) if gains else 0.0


def evaluate_ablation_step(
    model_name: str,
    step: str,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    plan_cache: Optional[PlanCache] = None,
):
    """Evaluate one ablation step; returns the raw ``BaselineResult``.

    ``step`` is one of :data:`ABLATION_STEPS`.
    """
    model = get_model(model_name)
    wafer = wafer or WaferScaleChip()
    if step == "base":
        return evaluate_baseline(
            BaselineScheme.FSDP, "smap", model, wafer=wafer, config=config,
            plan_cache=plan_cache)
    if step == "base+tatp":
        return TEMP(wafer=wafer, config=config, enable_tatp=True,
                    enable_tcme=False, plan_cache=plan_cache).optimize(model)
    if step == "base+tatp+tcme":
        return TEMP(wafer=wafer, config=config, enable_tatp=True,
                    enable_tcme=True, plan_cache=plan_cache).optimize(model)
    known = ", ".join(ABLATION_STEPS)
    raise ValueError(f"unknown ablation step {step!r}; expected one of {known}")


def run_ablation(
    models: Optional[Sequence[str]] = None,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    plan_cache: Optional[PlanCache] = None,
) -> AblationStudy:
    """Run the Fig. 16 ablation."""
    model_names = list(models) if models is not None else list(TABLE_II_MODELS)
    wafer = wafer or WaferScaleChip()
    study = AblationStudy()
    for name in model_names:
        row = AblationRow(model=name)
        for step in ABLATION_STEPS:
            result = evaluate_ablation_step(name, step, wafer=wafer,
                                            config=config,
                                            plan_cache=plan_cache)
            row.throughput[step] = (
                result.report.throughput if result.report else 0.0)
            row.specs[step] = (
                result.best_spec.label() if result.best_spec else "-")
        study.rows.append(row)
    return study


@register(
    figure="fig16",
    paper="Fig. 16",
    title="Ablation: base FSDP -> +TATP -> +TATP+TCME",
    default_grid={"model": list(TABLE_II_MODELS),
                  "step": list(ABLATION_STEPS)},
    reduced_grid={"model": ["llama3-70b"], "step": list(ABLATION_STEPS)},
    schema=("model", "step", "throughput", "spec", "oom"),
    entrypoints=("run_ablation",),
    description="TEMP's two optimisations are enabled incrementally on top "
                "of the FSDP+SMap baseline; the figure normalises each "
                "model's throughput to the base step.",
)
def ablation_cell(ctx, model, step):
    """One (model, ablation step) cell of Fig. 16."""
    result = evaluate_ablation_step(model, step, wafer=ctx.wafer,
                                    plan_cache=ctx.plan_cache)
    return [{
        "throughput": result.report.throughput if result.report else 0.0,
        "spec": result.best_spec.label() if result.best_spec else "-",
        "oom": result.oom,
    }]
