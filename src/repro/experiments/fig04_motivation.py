"""Fig. 4: motivation — the cost of stationary tensor partitioning.

Two measurements drive the paper's motivation:

* **Fig. 4(b)** — under Megatron-style execution, collective communication
  accounts for a large share (~35-45%) of training time while D2D bandwidth
  utilisation stays low,
* **Fig. 4(c)** — tensor replication inflates memory well beyond the ideal
  (fully sharded) footprint, pushing large models past the per-die HBM
  capacity.

Both halves are described by :class:`repro.api.Scenario` objects: the
breakdown is a MeSP+SMap search scenario, the memory study pins the
Megatron (TP=8, DP=wafer/8) and ideal (full-wafer TATP) configurations as
fixed specs (checkpoint fallback disabled so the replicated footprint — and
its OOM — is reported as-is).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.api.scenario import HardwareSpec, Scenario, SolverSpec, WorkloadSpec
from repro.api.service import PlanService
from repro.runner.registry import register
from repro.workloads.models import get_model


#: Models of the Fig. 4(b) time-breakdown study.
BREAKDOWN_MODELS = [
    "gpt3-6.7b", "gpt3-76b", "gpt3-175b",
    "deepseek-7b", "deepseek-67b", "deepseek-v2-236b",
]

#: Models of the Fig. 4(c) memory study.
MEMORY_MODELS = ["deepseek-7b", "llama2-70b", "bloom-176b"]

#: Tensor-parallel degree of the Fig. 4(c) Megatron recipe.
_MEMORY_TP = 8


def scenario_for_part(part: str, model: str) -> Scenario:
    """The :class:`Scenario` of one (sub-study, model) cell of Fig. 4.

    The memory part's scenario is the Megatron configuration; the ideal
    (fully sharded) companion is derived from it with
    :func:`ideal_memory_scenario`.
    """
    workload = WorkloadSpec(model=model)
    if part == "breakdown":
        return Scenario(workload=workload,
                        solver=SolverSpec(scheme="mesp", engine="smap"))
    if part == "memory":
        hardware = HardwareSpec()
        model_config = get_model(model)
        tp = min(_MEMORY_TP, model_config.num_heads, hardware.num_dies)
        return Scenario(
            workload=workload,
            hardware=hardware,
            solver=SolverSpec(
                scheme="megatron1", engine="smap",
                fixed_spec={"dp": hardware.num_dies // tp, "tp": tp,
                            "zero1_optimizer": False},
                allow_checkpoint_fallback=False,
            ),
        )
    raise ValueError(f"unknown Fig. 4 part {part!r}")


def ideal_memory_scenario(memory_scenario: Scenario) -> Scenario:
    """The zero-redundancy companion of a Fig. 4(c) memory scenario.

    The "Ideal" bar of the figure is the zero-redundancy footprint: every
    tensor sharded across all dies under the same micro-batched training
    recipe, which is exactly what a full-wafer TATP partitioning yields.
    """
    return replace(
        memory_scenario,
        solver=replace(memory_scenario.solver, scheme="temp",
                       fixed_spec={"tatp": memory_scenario.hardware.num_dies}),
    )


@dataclass
class BreakdownRow:
    """Fig. 4(b): time breakdown and bandwidth utilisation of one model."""

    model: str
    collective_fraction: float
    other_fraction: float
    bandwidth_utilization: float
    spec: str


@dataclass
class MemoryRow:
    """Fig. 4(c): Megatron vs ideal per-die memory of one model."""

    model: str
    megatron_gb: float
    ideal_gb: float
    capacity_gb: float
    megatron_oom: bool

    @property
    def overhead(self) -> float:
        """Megatron memory relative to the ideal footprint."""
        if self.ideal_gb <= 0:
            return 0.0
        return self.megatron_gb / self.ideal_gb


@dataclass
class MotivationResults:
    """Both halves of Fig. 4."""

    breakdown: List[BreakdownRow] = field(default_factory=list)
    memory: List[MemoryRow] = field(default_factory=list)


def run_breakdown(
    models: Optional[Sequence[str]] = None,
    service: Optional[PlanService] = None,
) -> List[BreakdownRow]:
    """Fig. 4(b): Megatron-style training-time breakdown per model."""
    model_names = list(models) if models is not None else list(BREAKDOWN_MODELS)
    service = service or PlanService()
    rows: List[BreakdownRow] = []
    for name in model_names:
        result = service.evaluate(scenario_for_part("breakdown", name))
        if result.step_time <= 0 or result.spec is None:
            continue
        collective = result.comm_time / result.step_time
        rows.append(BreakdownRow(
            model=name,
            collective_fraction=collective,
            other_fraction=1.0 - collective,
            bandwidth_utilization=result.bandwidth_utilization,
            spec=result.spec,
        ))
    return rows


def run_memory_comparison(
    models: Optional[Sequence[str]] = None,
    service: Optional[PlanService] = None,
) -> List[MemoryRow]:
    """Fig. 4(c): Megatron (TP=8, DP=wafer/8) vs ideal fully-sharded memory."""
    model_names = list(models) if models is not None else list(MEMORY_MODELS)
    service = service or PlanService()
    rows: List[MemoryRow] = []
    for name in model_names:
        scenario = scenario_for_part("memory", name)
        capacity_gb = (scenario.hardware.resolve_config().die.hbm.capacity
                       / (1024 ** 3))
        megatron = service.evaluate(scenario)
        ideal = service.evaluate(ideal_memory_scenario(scenario))
        rows.append(MemoryRow(
            model=name,
            megatron_gb=megatron.memory_gb,
            ideal_gb=ideal.memory_gb,
            capacity_gb=capacity_gb,
            megatron_oom=megatron.memory_gb > capacity_gb,
        ))
    return rows


def run_motivation(
    breakdown_models: Optional[Sequence[str]] = None,
    memory_models: Optional[Sequence[str]] = None,
    service: Optional[PlanService] = None,
) -> MotivationResults:
    """Run both halves of Fig. 4."""
    service = service or PlanService()
    return MotivationResults(
        breakdown=run_breakdown(breakdown_models, service=service),
        memory=run_memory_comparison(memory_models, service=service),
    )


@register(
    figure="fig04",
    paper="Fig. 4(b)/(c)",
    title="Motivation: the cost of stationary tensor partitioning",
    default_grid=(
        [{"part": "breakdown", "model": name} for name in BREAKDOWN_MODELS]
        + [{"part": "memory", "model": name} for name in MEMORY_MODELS]),
    reduced_grid=[
        {"part": "breakdown", "model": "gpt3-6.7b"},
        {"part": "memory", "model": "llama2-70b"},
    ],
    schema=("part", "model", "collective_fraction", "other_fraction",
            "bandwidth_utilization", "spec", "megatron_gb", "ideal_gb",
            "capacity_gb", "oom"),
    entrypoints=("run_motivation", "run_breakdown", "run_memory_comparison"),
    description="Fig. 4(b) measures the collective-communication share and "
                "D2D bandwidth utilisation of Megatron-style execution; "
                "Fig. 4(c) compares Megatron's replicated memory footprint "
                "against the ideal fully-sharded one. Columns of the other "
                "sub-study are null in each row.",
    scenario=scenario_for_part,
)
def motivation_cell(ctx, part, model):
    """One (sub-study, model) cell of Fig. 4."""
    if part == "breakdown":
        return [{
            "collective_fraction": row.collective_fraction,
            "other_fraction": row.other_fraction,
            "bandwidth_utilization": row.bandwidth_utilization,
            "spec": row.spec,
            "megatron_gb": None,
            "ideal_gb": None,
            "capacity_gb": None,
            "oom": False,
        } for row in run_breakdown(models=[model], service=ctx.service)]
    if part == "memory":
        return [{
            "collective_fraction": None,
            "other_fraction": None,
            "bandwidth_utilization": None,
            "spec": None,
            "megatron_gb": row.megatron_gb,
            "ideal_gb": row.ideal_gb,
            "capacity_gb": row.capacity_gb,
            "oom": row.megatron_oom,
        } for row in run_memory_comparison(models=[model],
                                           service=ctx.service)]
    raise ValueError(f"unknown Fig. 4 part {part!r}")
