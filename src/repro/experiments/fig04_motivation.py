"""Fig. 4: motivation — the cost of stationary tensor partitioning.

Two measurements drive the paper's motivation:

* **Fig. 4(b)** — under Megatron-style execution, collective communication
  accounts for a large share (~35-45%) of training time while D2D bandwidth
  utilisation stays low,
* **Fig. 4(c)** — tensor replication inflates memory well beyond the ideal
  (fully sharded) footprint, pushing large models past the per-die HBM
  capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.framework import evaluate_baseline
from repro.costmodel.tables import PlanCache
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.baselines import BaselineScheme
from repro.parallelism.spec import ParallelSpec
from repro.parallelism.strategies import analyze_model
from repro.runner.registry import register
from repro.simulation.config import SimulatorConfig
from repro.workloads.models import get_model


#: Models of the Fig. 4(b) time-breakdown study.
BREAKDOWN_MODELS = [
    "gpt3-6.7b", "gpt3-76b", "gpt3-175b",
    "deepseek-7b", "deepseek-67b", "deepseek-v2-236b",
]

#: Models of the Fig. 4(c) memory study.
MEMORY_MODELS = ["deepseek-7b", "llama2-70b", "bloom-176b"]


@dataclass
class BreakdownRow:
    """Fig. 4(b): time breakdown and bandwidth utilisation of one model."""

    model: str
    collective_fraction: float
    other_fraction: float
    bandwidth_utilization: float
    spec: str


@dataclass
class MemoryRow:
    """Fig. 4(c): Megatron vs ideal per-die memory of one model."""

    model: str
    megatron_gb: float
    ideal_gb: float
    capacity_gb: float
    megatron_oom: bool

    @property
    def overhead(self) -> float:
        """Megatron memory relative to the ideal footprint."""
        if self.ideal_gb <= 0:
            return 0.0
        return self.megatron_gb / self.ideal_gb


@dataclass
class MotivationResults:
    """Both halves of Fig. 4."""

    breakdown: List[BreakdownRow] = field(default_factory=list)
    memory: List[MemoryRow] = field(default_factory=list)


def run_breakdown(
    models: Optional[Sequence[str]] = None,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    plan_cache: Optional[PlanCache] = None,
) -> List[BreakdownRow]:
    """Fig. 4(b): Megatron-style training-time breakdown per model."""
    model_names = list(models) if models is not None else list(BREAKDOWN_MODELS)
    wafer = wafer or WaferScaleChip()
    rows: List[BreakdownRow] = []
    for name in model_names:
        model = get_model(name)
        result = evaluate_baseline(
            BaselineScheme.MESP, "smap", model, wafer=wafer, config=config,
            plan_cache=plan_cache)
        report = result.report
        if report is None:
            continue
        rows.append(BreakdownRow(
            model=name,
            collective_fraction=report.total_comm_time / report.step_time,
            other_fraction=1.0 - report.total_comm_time / report.step_time,
            bandwidth_utilization=report.bandwidth_utilization,
            spec=result.best_spec.label() if result.best_spec else "-",
        ))
    return rows


def run_memory_comparison(
    models: Optional[Sequence[str]] = None,
    wafer: Optional[WaferScaleChip] = None,
    tp: int = 8,
) -> List[MemoryRow]:
    """Fig. 4(c): Megatron (TP=8, DP=wafer/8) vs ideal fully-sharded memory."""
    model_names = list(models) if models is not None else list(MEMORY_MODELS)
    wafer = wafer or WaferScaleChip()
    num_dies = wafer.num_dies
    capacity_gb = wafer.config.die.hbm.capacity / (1024 ** 3)
    rows: List[MemoryRow] = []
    for name in model_names:
        model = get_model(name)
        tp_degree = min(tp, model.num_heads, num_dies)
        spec = ParallelSpec(dp=num_dies // tp_degree, tp=tp_degree,
                            zero1_optimizer=False)
        plan = analyze_model(model, spec, num_devices=num_dies)
        # The "Ideal" bar of the figure is the zero-redundancy footprint: every
        # tensor sharded across all dies under the same micro-batched training
        # recipe, which is exactly what a full-wafer TATP partitioning yields.
        ideal_plan = analyze_model(
            model, ParallelSpec(tatp=num_dies), num_devices=num_dies)
        megatron_gb = plan.memory.total / (1024 ** 3)
        rows.append(MemoryRow(
            model=name,
            megatron_gb=megatron_gb,
            ideal_gb=ideal_plan.memory.total / (1024 ** 3),
            capacity_gb=capacity_gb,
            megatron_oom=megatron_gb > capacity_gb,
        ))
    return rows


def run_motivation(
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    breakdown_models: Optional[Sequence[str]] = None,
    memory_models: Optional[Sequence[str]] = None,
) -> MotivationResults:
    """Run both halves of Fig. 4."""
    return MotivationResults(
        breakdown=run_breakdown(breakdown_models, wafer, config),
        memory=run_memory_comparison(memory_models, wafer),
    )


@register(
    figure="fig04",
    paper="Fig. 4(b)/(c)",
    title="Motivation: the cost of stationary tensor partitioning",
    default_grid=(
        [{"part": "breakdown", "model": name} for name in BREAKDOWN_MODELS]
        + [{"part": "memory", "model": name} for name in MEMORY_MODELS]),
    reduced_grid=[
        {"part": "breakdown", "model": "gpt3-6.7b"},
        {"part": "memory", "model": "llama2-70b"},
    ],
    schema=("part", "model", "collective_fraction", "other_fraction",
            "bandwidth_utilization", "spec", "megatron_gb", "ideal_gb",
            "capacity_gb", "oom"),
    entrypoints=("run_motivation", "run_breakdown", "run_memory_comparison"),
    description="Fig. 4(b) measures the collective-communication share and "
                "D2D bandwidth utilisation of Megatron-style execution; "
                "Fig. 4(c) compares Megatron's replicated memory footprint "
                "against the ideal fully-sharded one. Columns of the other "
                "sub-study are null in each row.",
)
def motivation_cell(ctx, part, model):
    """One (sub-study, model) cell of Fig. 4."""
    if part == "breakdown":
        return [{
            "collective_fraction": row.collective_fraction,
            "other_fraction": row.other_fraction,
            "bandwidth_utilization": row.bandwidth_utilization,
            "spec": row.spec,
            "megatron_gb": None,
            "ideal_gb": None,
            "capacity_gb": None,
            "oom": False,
        } for row in run_breakdown(models=[model],
                                   plan_cache=ctx.plan_cache)]
    if part == "memory":
        return [{
            "collective_fraction": None,
            "other_fraction": None,
            "bandwidth_utilization": None,
            "spec": None,
            "megatron_gb": row.megatron_gb,
            "ideal_gb": row.ideal_gb,
            "capacity_gb": row.capacity_gb,
            "oom": row.megatron_oom,
        } for row in run_memory_comparison(models=[model])]
    raise ValueError(f"unknown Fig. 4 part {part!r}")
