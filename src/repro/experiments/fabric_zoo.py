"""Fabric zoo: which interconnect fabric wins for which workload.

A paper-style design-space study over the topology zoo
(:mod:`repro.hardware.topologies`): every registered fabric family is
evaluated on the same wafer geometry under pinned, communication-heavy
parallelisations, and the study reports which fabric wins per workload.

The parallelisation is pinned per workload (``fixed_spec``) rather than
searched, for the same reason NoC papers sweep fixed traffic patterns:
the solver's free search steers communication onto die groups that ring
cheaply on *any* fabric, which hides exactly the fabric differences the
study is after. The pinned specs force row-spanning tensor-parallel
groups (``tp=8``: torus wrap links close them into rings, express links
shorten the chain closure) and deck-spanning groups (``tp=32``: the
stacked mesh pays weighted vertical hops, the chiplet fabric pays
backbone escapes), so each family's hop model shows up in the collective
costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.scenario import HardwareSpec, Scenario, SolverSpec, WorkloadSpec
from repro.api.service import PlanResult, PlanService
from repro.costmodel.tables import PlanCache
from repro.runner.registry import register

#: Fabric label -> ``HardwareSpec.topology`` spec of each studied fabric.
#: ``mesh`` stays ``None`` (the default fabric, and the cache-key baseline).
FABRICS: Dict[str, Optional[Dict[str, object]]] = {
    "mesh": None,
    "torus": {"name": "torus"},
    "mesh3d": {"name": "mesh3d", "layers": 2},
    "chiplet": {"name": "chiplet", "chiplet_rows": 2, "chiplet_cols": 2,
                "gateways": 2},
    "express": {"name": "express", "stride": 2},
}

#: Model -> pinned communication-heavy parallelisation of its study row.
#: ``tp=8`` rows exercise in-plane ring closure; ``tp=32`` spans decks and
#: chiplet boundaries.
WORKLOAD_SPECS: Dict[str, Dict[str, int]] = {
    "gpt3-6.7b": {"dp": 4, "tp": 8},
    "llama2-7b": {"dp": 4, "tp": 8},
    "llama3-70b": {"dp": 1, "tp": 32},
}

#: Model list of the full study, in presentation order.
MODELS = list(WORKLOAD_SPECS)

#: Single-model list used by fast test runs and the reduced CI grid.
FAST_MODELS = ["gpt3-6.7b"]


def scenario_for_fabric(model: str, fabric: str) -> Scenario:
    """The :class:`Scenario` of one (model, fabric) cell of the study."""
    try:
        topology = FABRICS[fabric]
    except KeyError:
        known = ", ".join(FABRICS)
        raise KeyError(
            f"unknown fabric {fabric!r}; expected one of {known}") from None
    try:
        fixed_spec = WORKLOAD_SPECS[model]
    except KeyError:
        known = ", ".join(WORKLOAD_SPECS)
        raise KeyError(
            f"no pinned parallelisation for model {model!r}; "
            f"expected one of {known}") from None
    return Scenario(
        workload=WorkloadSpec(model=model),
        hardware=HardwareSpec(topology=topology),
        solver=SolverSpec(scheme="temp", engine="tcme",
                          fixed_spec=dict(fixed_spec)),
    )


@dataclass
class FabricCell:
    """One (model, fabric) cell of the study."""

    model: str
    fabric: str
    spec: str
    oom: bool
    step_time: float
    compute_time: float
    comm_time: float
    memory_gb: float
    throughput: float


@dataclass
class FabricZooStudy:
    """All cells of the study plus the per-workload winners."""

    cells: List[FabricCell] = field(default_factory=list)

    def models(self) -> List[str]:
        """Model names in presentation order."""
        ordered: List[str] = []
        for cell in self.cells:
            if cell.model not in ordered:
                ordered.append(cell.model)
        return ordered

    def fabrics(self) -> List[str]:
        """Fabric labels in presentation order."""
        ordered: List[str] = []
        for cell in self.cells:
            if cell.fabric not in ordered:
                ordered.append(cell.fabric)
        return ordered

    def cell(self, model: str, fabric: str) -> FabricCell:
        """Look up one cell."""
        for candidate in self.cells:
            if candidate.model == model and candidate.fabric == fabric:
                return candidate
        raise KeyError(f"no cell for model={model} fabric={fabric}")

    def winner(self, model: str) -> str:
        """The fabric with the highest non-OOM throughput for ``model``."""
        best: Optional[FabricCell] = None
        for fabric in self.fabrics():
            cell = self.cell(model, fabric)
            if cell.oom:
                continue
            if best is None or cell.throughput > best.throughput:
                best = cell
        if best is None:
            raise ValueError(f"every fabric OOMs on {model}")
        return best.fabric

    def winners(self) -> Dict[str, str]:
        """Per-workload winning fabric — the study's headline result."""
        return {model: self.winner(model) for model in self.models()}

    def speedup_over_mesh(self, model: str) -> Dict[str, float]:
        """Per-fabric step-time speedup over the mesh baseline for ``model``."""
        mesh = self.cell(model, "mesh")
        speedups: Dict[str, float] = {}
        for fabric in self.fabrics():
            cell = self.cell(model, fabric)
            if not cell.oom and not mesh.oom and cell.step_time > 0:
                speedups[fabric] = mesh.step_time / cell.step_time
        return speedups


def evaluate_fabric(
    model: str,
    fabric: str,
    plan_cache: Optional[PlanCache] = None,
    service: Optional[PlanService] = None,
) -> FabricCell:
    """Evaluate one (model, fabric) cell of the study."""
    if service is None:
        service = PlanService(plan_cache=plan_cache)
    result = service.evaluate(scenario_for_fabric(model, fabric))
    return _cell_from(model, fabric, result)


def run_fabric_zoo(
    models: Optional[Sequence[str]] = None,
    fabrics: Optional[Sequence[str]] = None,
    plan_cache: Optional[PlanCache] = None,
) -> FabricZooStudy:
    """Run the fabric-zoo study grid.

    Args:
        models: model names to evaluate (defaults to :data:`MODELS`).
        fabrics: fabric labels to evaluate (defaults to all of
            :data:`FABRICS`).
        plan_cache: optional shared ``analyze_model`` memoisation.

    Returns:
        The populated :class:`FabricZooStudy`.
    """
    model_names = list(models) if models is not None else list(MODELS)
    fabric_names = list(fabrics) if fabrics is not None else list(FABRICS)
    service = PlanService(plan_cache=plan_cache)
    study = FabricZooStudy()
    for model in model_names:
        for fabric in fabric_names:
            study.cells.append(evaluate_fabric(model, fabric, service=service))
    return study


def _cell_from(model: str, fabric: str, result: PlanResult) -> FabricCell:
    return FabricCell(
        model=model,
        fabric=fabric,
        spec=result.spec if result.spec else "-",
        oom=result.oom,
        step_time=result.step_time,
        compute_time=result.compute_time,
        comm_time=result.comm_time,
        memory_gb=result.memory_gb,
        throughput=result.throughput,
    )


def format_table(study: FabricZooStudy) -> str:
    """Human-readable table of the study."""
    lines = ["model            fabric    spec                              "
             "OOM   step(s)  comm(s)  tok/s"]
    for cell in study.cells:
        lines.append(
            f"{cell.model:<16} {cell.fabric:<9} {cell.spec:<33} "
            f"{'yes' if cell.oom else 'no ':<5} {cell.step_time:8.3f} "
            f"{cell.comm_time:8.3f} {cell.throughput:10.0f}")
    lines.append("winners: " + ", ".join(
        f"{model}: {fabric}" for model, fabric in study.winners().items()))
    return "\n".join(lines)


@register(
    figure="fabric_zoo",
    paper="§ topology zoo",
    title="Fabric zoo: which interconnect fabric wins per workload",
    default_grid={"model": list(MODELS), "fabric": list(FABRICS)},
    reduced_grid={"model": list(FAST_MODELS), "fabric": list(FABRICS)},
    schema=("model", "fabric", "spec", "oom", "step_time", "compute_time",
            "comm_time", "memory_gb", "throughput"),
    entrypoints=("run_fabric_zoo",),
    description="Every registered interconnect fabric (mesh, torus, stacked "
                "3D mesh, hierarchical chiplet, express mesh) evaluated "
                "under pinned communication-heavy parallelisations, "
                "reporting per-workload throughput and the winning fabric.",
    scenario=scenario_for_fabric,
)
def fabric_cell(ctx, model, fabric):
    """One (model, fabric) cell of the fabric-zoo study."""
    cell = evaluate_fabric(model, fabric, service=ctx.service)
    return [{
        "spec": cell.spec,
        "oom": cell.oom,
        "step_time": cell.step_time,
        "compute_time": cell.compute_time,
        "comm_time": cell.comm_time,
        "memory_gb": cell.memory_gb,
        "throughput": cell.throughput,
    }]
