"""Fig. 17 / Fig. 18: throughput across mixed-parallelism configurations.

Fig. 17 sweeps (DP, TP, SP, TATP) configurations of Llama2 7B on a 32-die
wafer under the TCME mapping engine, for short (2k) and long (16k) sequences.
Fig. 18 repeats the exercise for the GPT-3 models and reports which
configuration wins; the paper's observation is that the winning TATP degree
consistently lands around 8-16 while the DP/TP/SP mix shifts with sequence
length and model size.

Each sweep is one base :class:`repro.api.Scenario`
(:func:`scenario_for_sweep`, carrying the workload overrides and the
engine); every enumerated configuration is a pinned-spec copy evaluated
through :class:`~repro.api.service.PlanService`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.scenario import Scenario, SolverSpec, WorkloadSpec
from repro.api.service import PlanService
from repro.parallelism.spec import ParallelSpec
from repro.runner.registry import register

#: Sequence lengths of Fig. 17 (short 2k / long 16k training).
FIG17_SEQ_LENGTHS = [2048, 16384]


def scenario_for_sweep(model: str, seq_length: int,
                       batch_size: Optional[int] = None) -> Scenario:
    """The base :class:`Scenario` of one (model, sequence length) sweep.

    Fig. 17(a) uses batch 128 with 2k sequences; Fig. 17(b) uses batch 32
    with 16k sequences (long-sequence training shrinks the batch).
    """
    if batch_size is None:
        batch_size = 128 if seq_length <= 4096 else 32
    return Scenario(
        workload=WorkloadSpec(model=model, batch_size=batch_size,
                              seq_length=seq_length),
        solver=SolverSpec(engine="tcme"),
    )


@dataclass
class ConfigThroughput:
    """Throughput of one (DP, TP, SP, TATP) configuration."""

    dp: int
    tp: int
    sp: int
    tatp: int
    throughput: float
    step_time: float
    memory_gb: float
    oom: bool

    @property
    def label(self) -> str:
        """The paper's (DP, TP, SP, TATP) tuple notation."""
        return f"({self.dp},{self.tp},{self.sp},{self.tatp})"


@dataclass
class ConfigSweep:
    """All configurations of one (model, sequence length) sweep."""

    model: str
    seq_length: int
    configs: List[ConfigThroughput] = field(default_factory=list)

    def best(self) -> ConfigThroughput:
        """The highest-throughput non-OOM configuration."""
        feasible = [config for config in self.configs if not config.oom]
        if not feasible:
            raise ValueError(f"every configuration of {self.model} went OOM")
        return max(feasible, key=lambda config: config.throughput)

    def best_with_tatp(self) -> ConfigThroughput:
        """The best configuration that uses TATP (degree > 1)."""
        feasible = [c for c in self.configs if not c.oom and c.tatp > 1]
        if not feasible:
            raise ValueError(f"no feasible TATP configuration for {self.model}")
        return max(feasible, key=lambda config: config.throughput)

    def best_without_tatp(self) -> ConfigThroughput:
        """The best configuration without TATP (the 'best of Mega' reference)."""
        feasible = [c for c in self.configs if not c.oom and c.tatp == 1]
        if not feasible:
            raise ValueError(f"no feasible non-TATP configuration for {self.model}")
        return max(feasible, key=lambda config: config.throughput)

    def normalized(self) -> Dict[str, float]:
        """Throughputs normalised to the best non-TATP configuration."""
        try:
            reference = self.best_without_tatp().throughput
        except ValueError:
            reference = 0.0
        if reference <= 0:
            return {config.label: 0.0 for config in self.configs}
        return {
            config.label: config.throughput / reference
            for config in self.configs
        }


def enumerate_configs(num_devices: int, max_tatp: int = 32) -> List[ParallelSpec]:
    """All (DP, TP, SP, TATP) combinations filling ``num_devices`` devices."""
    return [
        spec for spec in ParallelSpec.enumerate(
            num_devices, dimensions=("dp", "tp", "sp", "tatp"))
        if spec.tatp <= max_tatp
    ]


def run_config_sweep(
    model_name: str = "llama2-7b",
    seq_length: int = 2048,
    batch_size: Optional[int] = None,
    engine: str = "tcme",
    max_tatp: int = 32,
    service: Optional[PlanService] = None,
) -> ConfigSweep:
    """Sweep every (DP, TP, SP, TATP) configuration of one model."""
    service = service or PlanService()
    base = scenario_for_sweep(model_name, seq_length, batch_size=batch_size)
    if engine != base.solver.engine:
        base = replace(base, solver=replace(base.solver, engine=engine))
    model = base.workload.resolve()
    num_dies = base.hardware.num_dies

    sweep = ConfigSweep(model=model_name, seq_length=seq_length)
    for spec in enumerate_configs(num_dies, max_tatp=max_tatp):
        if spec.tp > model.num_heads:
            continue
        result = service.evaluate(base.with_fixed_spec(spec))
        sweep.configs.append(ConfigThroughput(
            dp=spec.dp, tp=spec.tp, sp=spec.sp, tatp=spec.tatp,
            throughput=result.throughput,
            step_time=result.step_time,
            memory_gb=result.memory_gb,
            oom=result.oom,
        ))
    return sweep


def run_convergence_study(
    model_names: Sequence[str] = ("gpt3-6.7b", "gpt3-76b", "gpt3-175b"),
    seq_lengths: Sequence[int] = (2048, 16384),
    service: Optional[PlanService] = None,
) -> Dict[Tuple[str, int], ConfigSweep]:
    """Fig. 18: best configurations of the GPT-3 models for short/long sequences."""
    service = service or PlanService()
    results: Dict[Tuple[str, int], ConfigSweep] = {}
    for name in model_names:
        for seq in seq_lengths:
            results[(name, seq)] = run_config_sweep(
                model_name=name, seq_length=seq, service=service)
    return results


@register(
    figure="fig17",
    paper="Fig. 17",
    title="Throughput of every (DP, TP, SP, TATP) configuration",
    default_grid={"model": ["llama2-7b"], "seq_length": list(FIG17_SEQ_LENGTHS)},
    reduced_grid={"model": ["llama2-7b"], "seq_length": [2048]},
    schema=("model", "seq_length", "config", "dp", "tp", "sp", "tatp",
            "throughput", "step_time", "memory_gb", "oom"),
    entrypoints=("run_config_sweep", "enumerate_configs"),
    description="Llama2 7B on a 32-die wafer under TCME: every "
                "(DP, TP, SP, TATP) combination filling the wafer, for "
                "short (2k, batch 128) and long (16k, batch 32) sequences.",
    scenario=scenario_for_sweep,
)
def config_sweep_cell(ctx, model, seq_length):
    """One (model, sequence length) sweep of Fig. 17 (one row per config)."""
    sweep = run_config_sweep(model_name=model, seq_length=seq_length,
                             service=ctx.service)
    return [{
        "config": item.label,
        "dp": item.dp,
        "tp": item.tp,
        "sp": item.sp,
        "tatp": item.tatp,
        "throughput": item.throughput,
        "step_time": item.step_time,
        "memory_gb": item.memory_gb,
        "oom": item.oom,
    } for item in sweep.configs]
