"""Fig. 9: the TATP parallel-degree sweet spot.

For a fixed workload (one GPT-3 175B class linear layer) distributed across N
dies under TATP, per-die memory and compute time shrink as O(1/N) while the
streamed communication stays O(1) and per-round overheads grow. Throughput
therefore peaks at a moderate degree (the paper finds N ~ 8-16) before
communication and fragmentation dominate; the power breakdown shifts from
compute-dominated to communication/DRAM-dominated over the same sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.api.scenario import Scenario, SolverSpec
from repro.hardware.config import WaferConfig, default_wafer_config
from repro.parallelism.tatp import TATPCharacteristics
from repro.runner.registry import register
from repro.simulation.communication import effective_bandwidth
from repro.simulation.config import SimulatorConfig

#: Die counts swept by the figure.
DIE_COUNTS = [2, 4, 8, 16, 32, 64]


def scenario_for_degree(degree: int) -> Scenario:
    """The :class:`Scenario` of one TATP degree of the Fig. 9 sweep.

    The sweep is purely analytical (one linear layer, no model search), so
    the scenario pins the TATP degree as a fixed spec and contributes the
    wafer geometry; the layer workload itself is the module's
    :class:`LinearLayerWorkload`.
    """
    return Scenario(solver=SolverSpec(fixed_spec={"tatp": int(degree)}))


@dataclass(frozen=True)
class LinearLayerWorkload:
    """The fixed linear-layer workload of the sweet-spot analysis.

    Defaults approximate one GPT-3 175B FFN projection processing one
    micro-batch of sequences.
    """

    batch: int = 4
    seq: int = 2048
    hidden: int = 12288
    intermediate: int = 49152
    dtype_bytes: int = 2

    @property
    def flops(self) -> float:
        """Forward FLOPs of the layer."""
        return 2.0 * self.batch * self.seq * self.hidden * self.intermediate

    @property
    def weight_bytes(self) -> float:
        """Weight tensor size."""
        return float(self.hidden * self.intermediate * self.dtype_bytes)

    @property
    def activation_bytes(self) -> float:
        """Input activation size."""
        return float(self.batch * self.seq * self.hidden * self.dtype_bytes)

    @property
    def output_bytes(self) -> float:
        """Output activation size."""
        return float(self.batch * self.seq * self.intermediate * self.dtype_bytes)


@dataclass
class SweetSpotPoint:
    """Metrics of one TATP degree N in the sweep."""

    degree: int
    throughput: float
    memory_bytes_per_die: float
    compute_time: float
    comm_time: float
    compute_power_fraction: float
    comm_power_fraction: float
    dram_power_fraction: float
    total_power: float

    @property
    def power_efficiency(self) -> float:
        """Throughput per watt."""
        if self.total_power <= 0:
            return 0.0
        return self.throughput / self.total_power


def run_sweet_spot(
    die_counts: Optional[Sequence[int]] = None,
    workload: Optional[LinearLayerWorkload] = None,
    wafer: Optional[WaferConfig] = None,
    config: Optional[SimulatorConfig] = None,
) -> List[SweetSpotPoint]:
    """Sweep the TATP degree and report throughput / memory / power."""
    counts = list(die_counts) if die_counts is not None else list(DIE_COUNTS)
    workload = workload or LinearLayerWorkload()
    wafer = wafer or default_wafer_config()
    config = config or SimulatorConfig()

    points: List[SweetSpotPoint] = []
    for degree in counts:
        characteristics = TATPCharacteristics.for_operator(
            degree=degree,
            total_flops=workload.flops,
            weight_bytes=workload.weight_bytes,
            activation_bytes=workload.activation_bytes,
            output_bytes=workload.output_bytes,
        )
        sustained = wafer.die.peak_flops * config.base_mfu
        compute_per_round = (
            characteristics.flops_per_round / sustained + config.kernel_overhead)
        chunk = characteristics.streamed_bytes_per_round
        bandwidth = effective_bandwidth(wafer.d2d, chunk, config)
        comm_per_round = wafer.d2d.latency + chunk / bandwidth
        round_time = max(compute_per_round, comm_per_round)
        layer_time = characteristics.num_rounds * round_time
        compute_time = characteristics.num_rounds * compute_per_round
        comm_time = characteristics.num_rounds * comm_per_round

        tokens = workload.batch * workload.seq
        throughput = tokens / layer_time if layer_time > 0 else 0.0

        compute_energy = workload.flops / wafer.die.flops_per_watt
        streamed_total = chunk * characteristics.num_rounds * degree
        comm_energy = streamed_total * wafer.d2d.energy_per_byte
        dram_traffic = (workload.weight_bytes + workload.activation_bytes
                        + workload.output_bytes) * 2.0
        dram_energy = dram_traffic * wafer.die.hbm.energy_per_byte
        total_energy = compute_energy + comm_energy + dram_energy
        total_power = total_energy / layer_time if layer_time > 0 else 0.0

        points.append(SweetSpotPoint(
            degree=degree,
            throughput=throughput,
            memory_bytes_per_die=characteristics.memory_bytes_per_die,
            compute_time=compute_time,
            comm_time=comm_time,
            compute_power_fraction=(
                compute_energy / total_energy if total_energy > 0 else 0.0),
            comm_power_fraction=(
                comm_energy / total_energy if total_energy > 0 else 0.0),
            dram_power_fraction=(
                dram_energy / total_energy if total_energy > 0 else 0.0),
            total_power=total_power,
        ))
    return points


def optimal_degree(points: Sequence[SweetSpotPoint]) -> int:
    """TATP degree with the highest throughput in a sweep."""
    if not points:
        raise ValueError("cannot pick an optimum from an empty sweep")
    return max(points, key=lambda point: point.throughput).degree


def optimal_power_efficiency_degree(points: Sequence[SweetSpotPoint]) -> int:
    """TATP degree with the highest throughput per watt."""
    if not points:
        raise ValueError("cannot pick an optimum from an empty sweep")
    return max(points, key=lambda point: point.power_efficiency).degree


@register(
    figure="fig09",
    paper="Fig. 9",
    title="TATP parallel-degree sweet spot (throughput / memory / power)",
    default_grid={"degree": list(DIE_COUNTS)},
    reduced_grid={"degree": [2, 8, 16, 64]},
    schema=("degree", "throughput", "memory_bytes_per_die", "compute_time",
            "comm_time", "compute_power_fraction", "comm_power_fraction",
            "dram_power_fraction", "total_power", "power_efficiency"),
    entrypoints=("run_sweet_spot", "optimal_degree",
                 "optimal_power_efficiency_degree"),
    description="A fixed GPT-3-class linear layer is distributed across N "
                "dies under TATP; throughput peaks at a moderate degree "
                "while the power mix shifts from compute- to "
                "communication/DRAM-dominated.",
    scenario=scenario_for_degree,
)
def sweet_spot_cell(ctx, degree):
    """One TATP degree of the Fig. 9 sweep (purely analytical)."""
    scenario = scenario_for_degree(degree)
    degree = scenario.solver.resolve_fixed_spec().tatp
    wafer = scenario.hardware.resolve_config()
    return [{
        "throughput": point.throughput,
        "memory_bytes_per_die": point.memory_bytes_per_die,
        "compute_time": point.compute_time,
        "comm_time": point.comm_time,
        "compute_power_fraction": point.compute_power_fraction,
        "comm_power_fraction": point.comm_power_fraction,
        "dram_power_fraction": point.dram_power_fraction,
        "total_power": point.total_power,
        "power_efficiency": point.power_efficiency,
    } for point in run_sweet_spot(die_counts=[degree], wafer=wafer)]
