"""Fig. 7(c): compute utilisation of physical vs logical (non-contiguous) rings.

A TATP group mapped onto a contiguous physical ring pays one-hop transfers
only; a group scattered across the wafer ("logical ring") pays multi-hop
relays that stall computation. The figure sweeps wafer sizes and shows the
utilisation gap growing past 30% for large wafers — the motivation for TATP's
topology awareness.

The runner evaluates the same TATP plan twice: once mapped by TCME (snake
ordering, contiguous chains) and once with a deliberately scattered group
assignment, and reports the achieved compute utilisation of both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.hardware.config import default_wafer_config
from repro.hardware.wafer import WaferScaleChip
from repro.mapping.engines import SMapEngine, TCMEEngine
from repro.parallelism.spec import ParallelSpec
from repro.parallelism.strategies import analyze_model
from repro.runner.registry import register
from repro.simulation.config import SimulatorConfig
from repro.simulation.simulator import WaferSimulator
from repro.workloads.models import get_model

#: (rows, cols) wafer sizes swept by the figure, smallest to largest.
WAFER_SIZES: List[Tuple[int, int]] = [(4, 5), (4, 8), (6, 8), (8, 10)]

#: Models of the sweep.
MODELS = ["llama2-7b", "llama2-30b", "llama2-70b"]


class ScatteredEngine(SMapEngine):
    """A mapper that deliberately scatters group members across the wafer.

    Logical neighbours land on dies that are far apart (stride-based
    interleaving), forcing every TATP relay and ring step onto multi-hop
    paths: the "logical ring" case of the figure.
    """

    name = "scattered"

    def _die_ordering(self, wafer, plan):  # noqa: D102 - see class docstring
        dies = wafer.healthy_dies()
        half = (len(dies) + 1) // 2
        interleaved: List[int] = []
        for index in range(half):
            interleaved.append(dies[index])
            if index + half < len(dies):
                interleaved.append(dies[index + half])
        return interleaved


@dataclass
class RingUtilizationRow:
    """Utilisation of one (model, wafer size) pair under both mappings."""

    model: str
    wafer_dies: int
    physical_ring_utilization: float
    logical_ring_utilization: float

    @property
    def utilization_drop(self) -> float:
        """Relative utilisation lost by the non-contiguous mapping."""
        if self.physical_ring_utilization <= 0:
            return 0.0
        return 1.0 - self.logical_ring_utilization / self.physical_ring_utilization


def run_ring_utilization(
    models: Optional[Sequence[str]] = None,
    wafer_sizes: Optional[Sequence[Tuple[int, int]]] = None,
    tatp_degree: int = 8,
    config: Optional[SimulatorConfig] = None,
) -> List[RingUtilizationRow]:
    """Run the Fig. 7(c) sweep."""
    model_names = list(models) if models is not None else list(MODELS)
    sizes = list(wafer_sizes) if wafer_sizes is not None else list(WAFER_SIZES)
    config = config or SimulatorConfig()
    rows: List[RingUtilizationRow] = []
    for rows_cols in sizes:
        wafer = WaferScaleChip(default_wafer_config(*rows_cols))
        num_dies = wafer.num_dies
        if num_dies % tatp_degree:
            continue
        for name in model_names:
            model = get_model(name)
            spec = ParallelSpec(dp=num_dies // tatp_degree, tatp=tatp_degree)
            plan = analyze_model(model, spec, num_devices=num_dies)
            simulator = WaferSimulator(wafer, config)
            physical = simulator.simulate_with_engine(plan, TCMEEngine())
            logical = simulator.simulate_with_engine(plan, ScatteredEngine())
            rows.append(RingUtilizationRow(
                model=name,
                wafer_dies=num_dies,
                physical_ring_utilization=physical.compute_utilization,
                logical_ring_utilization=logical.compute_utilization,
            ))
    return rows


@register(
    figure="fig07",
    paper="Fig. 7(c)",
    title="Compute utilisation of physical vs logical (scattered) rings",
    # (4,5) is omitted: 20 dies are not divisible by the TATP degree 8 the
    # figure fixes, so the runner would emit no rows for it.
    default_grid={
        "model": list(MODELS),
        "wafer": ["4x8", "6x8", "8x10"],
    },
    reduced_grid={"model": ["llama2-7b"], "wafer": ["4x8"]},
    schema=("model", "wafer", "wafer_dies", "physical_ring_utilization",
            "logical_ring_utilization", "utilization_drop"),
    entrypoints=("run_ring_utilization",),
    description="The same TATP plan is mapped once onto contiguous physical "
                "rings (TCME) and once deliberately scattered; the gap is "
                "the multi-hop relay penalty that motivates TATP's topology "
                "awareness.",
)
def ring_utilization_cell(ctx, model, wafer):
    """One (model, wafer size) cell of Fig. 7(c)."""
    rows_count, cols = (int(part) for part in wafer.split("x"))
    return [{
        "wafer_dies": row.wafer_dies,
        "physical_ring_utilization": row.physical_ring_utilization,
        "logical_ring_utilization": row.logical_ring_utilization,
        "utilization_drop": row.utilization_drop,
    } for row in run_ring_utilization(models=[model],
                                      wafer_sizes=[(rows_count, cols)])]
