"""Fig. 7(c): compute utilisation of physical vs logical (non-contiguous) rings.

A TATP group mapped onto a contiguous physical ring pays one-hop transfers
only; a group scattered across the wafer ("logical ring") pays multi-hop
relays that stall computation. The figure sweeps wafer sizes and shows the
utilisation gap growing past 30% for large wafers — the motivation for TATP's
topology awareness.

The runner evaluates the same pinned TATP scenario twice: once with the TCME
engine (snake ordering, contiguous chains) and once with the adversarial
``"scattered"`` engine (:class:`repro.mapping.engines.ScatteredEngine`), and
reports the achieved compute utilisation of both.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.api.scenario import HardwareSpec, Scenario, SolverSpec, WorkloadSpec
from repro.api.service import PlanService
from repro.runner.registry import register

#: (rows, cols) wafer sizes swept by the figure, smallest to largest.
WAFER_SIZES: List[Tuple[int, int]] = [(4, 5), (4, 8), (6, 8), (8, 10)]

#: Models of the sweep.
MODELS = ["llama2-7b", "llama2-30b", "llama2-70b"]

#: TATP degree the figure fixes.
_TATP_DEGREE = 8


def scenario_for_ring(model: str, wafer: str) -> Scenario:
    """The physical-ring :class:`Scenario` of one (model, wafer size) cell.

    ``wafer`` is a "RxC" geometry label like ``"4x8"``. The logical-ring
    companion is the same scenario with the ``"scattered"`` engine.
    """
    rows, cols = (int(part) for part in wafer.split("x"))
    hardware = HardwareSpec(rows=rows, cols=cols)
    return Scenario(
        workload=WorkloadSpec(model=model),
        hardware=hardware,
        solver=SolverSpec(
            engine="tcme",
            fixed_spec={"dp": hardware.num_dies // _TATP_DEGREE,
                        "tatp": _TATP_DEGREE},
            allow_checkpoint_fallback=False,
        ),
    )


@dataclass
class RingUtilizationRow:
    """Utilisation of one (model, wafer size) pair under both mappings."""

    model: str
    wafer_dies: int
    physical_ring_utilization: float
    logical_ring_utilization: float

    @property
    def utilization_drop(self) -> float:
        """Relative utilisation lost by the non-contiguous mapping."""
        if self.physical_ring_utilization <= 0:
            return 0.0
        return 1.0 - self.logical_ring_utilization / self.physical_ring_utilization


def run_ring_utilization(
    models: Optional[Sequence[str]] = None,
    wafer_sizes: Optional[Sequence[Tuple[int, int]]] = None,
    tatp_degree: int = _TATP_DEGREE,
    service: Optional[PlanService] = None,
) -> List[RingUtilizationRow]:
    """Run the Fig. 7(c) sweep."""
    model_names = list(models) if models is not None else list(MODELS)
    sizes = list(wafer_sizes) if wafer_sizes is not None else list(WAFER_SIZES)
    service = service or PlanService()
    rows: List[RingUtilizationRow] = []
    for wafer_rows, wafer_cols in sizes:
        num_dies = wafer_rows * wafer_cols
        if num_dies % tatp_degree:
            continue
        for name in model_names:
            scenario = scenario_for_ring(name, f"{wafer_rows}x{wafer_cols}")
            if tatp_degree != _TATP_DEGREE:
                scenario = replace(scenario, solver=replace(
                    scenario.solver,
                    fixed_spec={"dp": num_dies // tatp_degree,
                                "tatp": tatp_degree}))
            scattered = replace(scenario, solver=replace(
                scenario.solver, engine="scattered"))
            physical = service.evaluate(scenario)
            logical = service.evaluate(scattered)
            rows.append(RingUtilizationRow(
                model=name,
                wafer_dies=num_dies,
                physical_ring_utilization=physical.compute_utilization,
                logical_ring_utilization=logical.compute_utilization,
            ))
    return rows


@register(
    figure="fig07",
    paper="Fig. 7(c)",
    title="Compute utilisation of physical vs logical (scattered) rings",
    # (4,5) is omitted: 20 dies are not divisible by the TATP degree 8 the
    # figure fixes, so the runner would emit no rows for it.
    default_grid={
        "model": list(MODELS),
        "wafer": ["4x8", "6x8", "8x10"],
    },
    reduced_grid={"model": ["llama2-7b"], "wafer": ["4x8"]},
    schema=("model", "wafer", "wafer_dies", "physical_ring_utilization",
            "logical_ring_utilization", "utilization_drop"),
    entrypoints=("run_ring_utilization",),
    description="The same pinned TATP scenario is mapped once onto "
                "contiguous physical rings (TCME) and once with the "
                "adversarial scattered engine; the gap is the multi-hop "
                "relay penalty that motivates TATP's topology awareness.",
    scenario=scenario_for_ring,
)
def ring_utilization_cell(ctx, model, wafer):
    """One (model, wafer size) cell of Fig. 7(c)."""
    rows_count, cols = (int(part) for part in wafer.split("x"))
    return [{
        "wafer_dies": row.wafer_dies,
        "physical_ring_utilization": row.physical_ring_utilization,
        "logical_ring_utilization": row.logical_ring_utilization,
        "utilization_drop": row.utilization_drop,
    } for row in run_ring_utilization(models=[model],
                                      wafer_sizes=[(rows_count, cols)],
                                      service=ctx.service)]
