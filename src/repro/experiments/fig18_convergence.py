"""Fig. 18: convergence of the optimal TATP dimension.

Thin wrapper around the Fig. 17 sweep machinery applied to the GPT-3 models
for short (2k) and long (16k) sequences: the paper's claim is that regardless
of model size and sequence length, the winning configuration's TATP degree
converges to 8 or 16, while the DP/TP/SP mix shifts.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.fig17_parallel_configs import ConfigSweep, run_config_sweep
from repro.hardware.wafer import WaferScaleChip
from repro.simulation.config import SimulatorConfig

#: Models and sequence lengths of Fig. 18.
CONVERGENCE_MODELS = ("gpt3-6.7b", "gpt3-76b", "gpt3-175b")
CONVERGENCE_SEQ_LENGTHS = (2048, 16384)


def run_convergence(
    model_names: Sequence[str] = CONVERGENCE_MODELS,
    seq_lengths: Sequence[int] = CONVERGENCE_SEQ_LENGTHS,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
) -> Dict[Tuple[str, int], ConfigSweep]:
    """Run the Fig. 18 sweeps and return one ConfigSweep per (model, seq)."""
    results: Dict[Tuple[str, int], ConfigSweep] = {}
    for name in model_names:
        for seq in seq_lengths:
            results[(name, seq)] = run_config_sweep(
                model_name=name, seq_length=seq, wafer=wafer, config=config)
    return results


def optimal_tatp_degrees(
    results: Dict[Tuple[str, int], ConfigSweep]
) -> Dict[Tuple[str, int], int]:
    """TATP degree of the winning configuration of each sweep."""
    return {
        key: sweep.best().tatp for key, sweep in results.items()
    }
