"""Fig. 18: convergence of the optimal TATP dimension.

Thin wrapper around the Fig. 17 sweep machinery applied to the GPT-3 models
for short (2k) and long (16k) sequences: the paper's claim is that regardless
of model size and sequence length, the winning configuration's TATP degree
converges to 8 or 16, while the DP/TP/SP mix shifts.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.api.service import PlanService
from repro.experiments.fig17_parallel_configs import (
    ConfigSweep,
    run_config_sweep,
    scenario_for_sweep,
)
from repro.runner.registry import register

#: Models and sequence lengths of Fig. 18.
CONVERGENCE_MODELS = ("gpt3-6.7b", "gpt3-76b", "gpt3-175b")
CONVERGENCE_SEQ_LENGTHS = (2048, 16384)


def run_convergence(
    model_names: Sequence[str] = CONVERGENCE_MODELS,
    seq_lengths: Sequence[int] = CONVERGENCE_SEQ_LENGTHS,
    service: Optional[PlanService] = None,
) -> Dict[Tuple[str, int], ConfigSweep]:
    """Run the Fig. 18 sweeps and return one ConfigSweep per (model, seq)."""
    service = service or PlanService()
    results: Dict[Tuple[str, int], ConfigSweep] = {}
    for name in model_names:
        for seq in seq_lengths:
            results[(name, seq)] = run_config_sweep(
                model_name=name, seq_length=seq, service=service)
    return results


def optimal_tatp_degrees(
    results: Dict[Tuple[str, int], ConfigSweep]
) -> Dict[Tuple[str, int], int]:
    """TATP degree of the winning configuration of each sweep."""
    return {
        key: sweep.best().tatp for key, sweep in results.items()
    }


@register(
    figure="fig18",
    paper="Fig. 18",
    title="Convergence of the optimal TATP degree across GPT-3 models",
    default_grid={"model": list(CONVERGENCE_MODELS),
                  "seq_length": list(CONVERGENCE_SEQ_LENGTHS)},
    reduced_grid={"model": ["gpt3-6.7b"], "seq_length": [2048]},
    schema=("model", "seq_length", "best_config", "best_tatp",
            "best_throughput", "gain_over_best_non_tatp", "num_configs",
            "num_feasible"),
    entrypoints=("run_convergence", "optimal_tatp_degrees"),
    description="The Fig. 17 sweep applied to the GPT-3 models: one summary "
                "row per (model, sequence length) reporting the winning "
                "configuration and its TATP degree.",
    scenario=scenario_for_sweep,
)
def convergence_cell(ctx, model, seq_length):
    """One (model, sequence length) summary row of Fig. 18."""
    sweep = run_config_sweep(model_name=model, seq_length=seq_length,
                             service=ctx.service)
    best = sweep.best()
    feasible = [item for item in sweep.configs if not item.oom]
    try:
        gain = best.throughput / sweep.best_without_tatp().throughput
    except (ValueError, ZeroDivisionError):
        gain = None
    return [{
        "best_config": best.label,
        "best_tatp": best.tatp,
        "best_throughput": best.throughput,
        "gain_over_best_non_tatp": gain,
        "num_configs": len(sweep.configs),
        "num_feasible": len(feasible),
    }]
