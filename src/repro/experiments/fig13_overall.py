"""Fig. 13: overall training-performance comparison.

Six baselines (three partitioning schemes x two mapping engines) plus TEMP are
evaluated on the Table II models. For each cell the runner reports the
normalised training latency with its computation / communication breakdown,
the peak per-die memory, and whether the configuration ran out of memory —
exactly the quantities the figure plots.

Every cell is described by a :class:`repro.api.Scenario`
(:func:`scenario_for_system`) and evaluated through
:class:`repro.api.PlanService`; Fig. 14 reads the power numbers off the same
scenarios this figure reads the latency off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.scenario import Scenario, SolverSpec, WorkloadSpec
from repro.api.service import PlanResult, PlanService
from repro.core.framework import BaselineResult
from repro.core.metrics import geometric_mean
from repro.costmodel.tables import PlanCache
from repro.hardware.wafer import WaferScaleChip
from repro.parallelism.baselines import BaselineScheme
from repro.runner.registry import register
from repro.simulation.config import SimulatorConfig
from repro.workloads.models import TABLE_II_MODELS

#: The six baseline (scheme, engine) pairs of the figure, in label order.
BASELINE_GRID = [
    (BaselineScheme.MEGATRON1, "smap", "Mega+SMap"),
    (BaselineScheme.MEGATRON1, "gmap", "Mega+GMap"),
    (BaselineScheme.MESP, "smap", "MeSP+SMap"),
    (BaselineScheme.MESP, "gmap", "MeSP+GMap"),
    (BaselineScheme.FSDP, "smap", "FSDP+SMap"),
    (BaselineScheme.FSDP, "gmap", "FSDP+GMap"),
]

#: System labels of the figure, baselines first, TEMP last.
SYSTEMS = [label for _, _, label in BASELINE_GRID] + ["TEMP"]

#: Label -> (scheme, engine) lookup for the six baselines.
_SYSTEM_TABLE = {label: (scheme, engine)
                 for scheme, engine, label in BASELINE_GRID}

#: Short model list used by fast test runs.
FAST_MODELS = ["gpt3-6.7b", "llama3-70b"]


def scenario_for_system(model: str, system: str) -> Scenario:
    """The :class:`Scenario` of one (model, system) cell of Fig. 13/14.

    ``system`` is one of :data:`SYSTEMS` ("Mega+SMap" ... "TEMP").
    """
    workload = WorkloadSpec(model=model)
    if system == "TEMP":
        return Scenario(workload=workload, solver=SolverSpec.for_framework())
    try:
        scheme, engine = _SYSTEM_TABLE[system]
    except KeyError:
        known = ", ".join(SYSTEMS)
        raise KeyError(
            f"unknown system {system!r}; expected one of {known}") from None
    return Scenario(workload=workload,
                    solver=SolverSpec(scheme=scheme.value, engine=engine))


@dataclass
class OverallCell:
    """One (model, system) cell of Fig. 13."""

    model: str
    system: str
    spec: str
    oom: bool
    step_time: float
    compute_time: float
    comm_time: float
    memory_gb: float
    throughput: float
    power_efficiency: float


@dataclass
class OverallComparison:
    """All cells of Fig. 13 plus the headline speedups of §VIII-B."""

    cells: List[OverallCell] = field(default_factory=list)

    def systems(self) -> List[str]:
        """System labels in presentation order."""
        ordered: List[str] = []
        for cell in self.cells:
            if cell.system not in ordered:
                ordered.append(cell.system)
        return ordered

    def models(self) -> List[str]:
        """Model names in presentation order."""
        ordered: List[str] = []
        for cell in self.cells:
            if cell.model not in ordered:
                ordered.append(cell.model)
        return ordered

    def cell(self, model: str, system: str) -> OverallCell:
        """Look up one cell."""
        for candidate in self.cells:
            if candidate.model == model and candidate.system == system:
                return candidate
        raise KeyError(f"no cell for model={model} system={system}")

    def speedup_over(self, system: str) -> float:
        """Geometric-mean TEMP speedup over ``system`` across non-OOM models."""
        ratios: List[float] = []
        for model in self.models():
            baseline = self.cell(model, system)
            temp = self.cell(model, "TEMP")
            if baseline.oom or temp.oom:
                continue
            ratios.append(baseline.step_time / temp.step_time)
        return geometric_mean(ratios) if ratios else 0.0

    def average_speedups(self) -> Dict[str, float]:
        """TEMP speedup over every baseline system (§VIII-B headline numbers)."""
        return {
            system: self.speedup_over(system)
            for system in self.systems() if system != "TEMP"
        }

    def normalized_latency(self, model: str) -> Dict[str, float]:
        """Per-model latencies normalised to the slowest non-OOM system."""
        times = {
            system: self.cell(model, system).step_time
            for system in self.systems()
            if not self.cell(model, system).oom
        }
        if not times:
            return {}
        slowest = max(times.values())
        return {system: time / slowest for system, time in times.items()}

    def memory_ratio(self, model: str) -> Dict[str, float]:
        """Per-model peak memory of TEMP relative to each baseline."""
        temp_memory = self.cell(model, "TEMP").memory_gb
        ratios: Dict[str, float] = {}
        for system in self.systems():
            if system == "TEMP":
                continue
            baseline = self.cell(model, system)
            if baseline.memory_gb > 0:
                ratios[system] = temp_memory / baseline.memory_gb
        return ratios


def evaluate_system_result(
    model_name: str,
    system: str,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    plan_cache: Optional[PlanCache] = None,
    service: Optional[PlanService] = None,
) -> BaselineResult:
    """Raw :class:`BaselineResult` of one (model, system) pair.

    Builds the cell's scenario and runs it through a
    :class:`~repro.api.service.PlanService` (a fresh one around
    ``plan_cache`` unless ``service`` is given). Fig. 14 reads the power
    numbers off the same results this figure reads the latency off, so both
    share this evaluator.
    """
    if service is None:
        service = PlanService(plan_cache=plan_cache)
    return service.evaluate_raw(scenario_for_system(model_name, system),
                                wafer=wafer, config=config)


def evaluate_system(
    model_name: str,
    system: str,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    plan_cache: Optional[PlanCache] = None,
    service: Optional[PlanService] = None,
) -> OverallCell:
    """Evaluate one (model, system) cell of the Fig. 13 grid."""
    result = evaluate_system_result(model_name, system, wafer=wafer,
                                    config=config, plan_cache=plan_cache,
                                    service=service)
    return _cell_from(model_name, system, PlanResult.from_baseline(result))


def run_overall_comparison(
    models: Optional[Sequence[str]] = None,
    wafer: Optional[WaferScaleChip] = None,
    config: Optional[SimulatorConfig] = None,
    plan_cache: Optional[PlanCache] = None,
) -> OverallComparison:
    """Run the Fig. 13 grid.

    Args:
        models: model names to evaluate (defaults to all of Table II).
        wafer: wafer configuration (defaults to the 4x8 Table I wafer).
        config: simulator knobs.
        plan_cache: optional shared ``analyze_model`` memoisation.

    Returns:
        The populated :class:`OverallComparison`.
    """
    model_names = list(models) if models is not None else list(TABLE_II_MODELS)
    service = PlanService(plan_cache=plan_cache)
    comparison = OverallComparison()
    for name in model_names:
        for system in SYSTEMS:
            comparison.cells.append(evaluate_system(
                name, system, wafer=wafer, config=config, service=service))
    return comparison


def _cell_from(model: str, system: str, result: PlanResult) -> OverallCell:
    return OverallCell(
        model=model,
        system=system,
        spec=result.spec if result.spec else "-",
        oom=result.oom,
        step_time=result.step_time,
        compute_time=result.compute_time,
        comm_time=result.comm_time,
        memory_gb=result.memory_gb,
        throughput=result.throughput,
        power_efficiency=result.power_efficiency,
    )


def format_table(comparison: OverallComparison) -> str:
    """Human-readable table of the comparison (used by the bench printout)."""
    lines = ["model            system      spec                              "
             "OOM   step(s)  comm(s)  mem(GB)  tok/s"]
    for cell in comparison.cells:
        lines.append(
            f"{cell.model:<16} {cell.system:<11} {cell.spec:<33} "
            f"{'yes' if cell.oom else 'no ':<5} {cell.step_time:8.3f} "
            f"{cell.comm_time:8.3f} {cell.memory_gb:8.1f} {cell.throughput:10.0f}")
    speedups = comparison.average_speedups()
    lines.append("TEMP average speedups: " + ", ".join(
        f"{system}: {value:.2f}x" for system, value in speedups.items()))
    return "\n".join(lines)


@register(
    figure="fig13",
    paper="Fig. 13",
    title="Overall training-performance comparison (7 systems x Table II)",
    default_grid={"model": list(TABLE_II_MODELS), "system": list(SYSTEMS)},
    reduced_grid={"model": list(FAST_MODELS), "system": list(SYSTEMS)},
    schema=("model", "system", "spec", "oom", "step_time", "compute_time",
            "comm_time", "memory_gb", "throughput", "power_efficiency"),
    entrypoints=("run_overall_comparison",),
    description="Three partitioning schemes x two mapping engines plus TEMP "
                "on the Table II models: normalised training latency with "
                "its compute/communication breakdown, peak per-die memory, "
                "and OOM flags.",
    scenario=scenario_for_system,
)
def overall_cell(ctx, model, system):
    """One (model, system) cell of Fig. 13."""
    cell = evaluate_system(model, system, service=ctx.service)
    return [{
        "spec": cell.spec,
        "oom": cell.oom,
        "step_time": cell.step_time,
        "compute_time": cell.compute_time,
        "comm_time": cell.comm_time,
        "memory_gb": cell.memory_gb,
        "throughput": cell.throughput,
        "power_efficiency": cell.power_efficiency,
    }]
