"""Benchmark regenerating Fig. 4 (motivation: time breakdown and memory overhead)."""

from repro.experiments.fig04_motivation import run_motivation


def test_fig04_motivation(benchmark):
    results = benchmark.pedantic(
        run_motivation,
        kwargs={"breakdown_models": ["gpt3-6.7b", "gpt3-76b", "gpt3-175b"],
                "memory_models": ["deepseek-7b", "llama2-70b", "bloom-176b"]},
        rounds=1, iterations=1)

    print()
    print("Fig. 4(b): Megatron-style time breakdown")
    for row in results.breakdown:
        print(f"  {row.model:<14} collective={row.collective_fraction:5.1%} "
              f"bw-util={row.bandwidth_utilization:5.1%} spec={row.spec}")
    print("Fig. 4(c): Megatron vs ideal per-die memory (GB)")
    for row in results.memory:
        print(f"  {row.model:<14} megatron={row.megatron_gb:7.1f} "
              f"ideal={row.ideal_gb:6.1f} capacity={row.capacity_gb:5.1f} "
              f"oom={row.megatron_oom}")

    # Collective communication is a substantial share of Megatron training time.
    assert all(row.collective_fraction > 0.05 for row in results.breakdown)
    # D2D bandwidth stays well below saturation (paper: < 55%).
    assert all(row.bandwidth_utilization < 0.55 for row in results.breakdown)
    # Replication-heavy Megatron exceeds the ideal footprint on every model and
    # overflows the per-die capacity for the 70B+ ones.
    assert all(row.overhead > 1.0 for row in results.memory)
    assert any(row.megatron_oom for row in results.memory)
