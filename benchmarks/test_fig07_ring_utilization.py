"""Benchmark regenerating Fig. 7(c) (physical vs logical ring utilization)."""

from repro.experiments.fig07_ring_utilization import run_ring_utilization


def test_fig07_ring_utilization(benchmark):
    rows = benchmark.pedantic(
        run_ring_utilization,
        kwargs={"models": ["llama2-7b", "llama2-30b", "llama2-70b"],
                "wafer_sizes": [(4, 8), (6, 8), (8, 10)]},
        rounds=1, iterations=1)

    print()
    print("model         dies  physical-ring  logical-ring  drop")
    for row in rows:
        print(f"{row.model:<13} {row.wafer_dies:4d}  "
              f"{row.physical_ring_utilization:12.1%}  "
              f"{row.logical_ring_utilization:12.1%}  {row.utilization_drop:6.1%}")

    assert rows
    # A contiguous physical-ring mapping never does worse than the scattered
    # (logical-ring) mapping, and the gap never exceeds the paper's worst case.
    for row in rows:
        assert row.physical_ring_utilization >= row.logical_ring_utilization - 1e-9
        assert 0.0 <= row.utilization_drop <= 0.6
