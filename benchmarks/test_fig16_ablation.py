"""Benchmark regenerating Fig. 16 (ablation: Base, +TATP, +TATP+TCME)."""

from repro.experiments.fig16_ablation import run_ablation
from repro.workloads.models import TABLE_II_MODELS


def test_fig16_ablation(benchmark):
    study = benchmark.pedantic(
        run_ablation, kwargs={"models": TABLE_II_MODELS}, rounds=1, iterations=1)

    print()
    print("model            base      +TATP     +TATP+TCME   (normalised throughput)")
    for row in study.rows:
        normalized = row.normalized()
        print(f"{row.model:<16} {normalized['base']:8.2f}  "
              f"{normalized['base+tatp']:8.2f}  {normalized['base+tatp+tcme']:10.2f}")
    tatp_gain = study.average_gain("base+tatp", "base")
    tcme_gain = study.average_gain("base+tatp+tcme", "base+tatp")
    print(f"average gain from TATP: {tatp_gain:.2f}x; from TCME: {tcme_gain:.2f}x")

    # Every optimisation step helps (or at least never hurts) every model, and
    # the average gains are positive, with TATP contributing at least as much
    # as TCME (paper: 1.21x vs 1.14x).
    for row in study.rows:
        normalized = row.normalized()
        assert normalized["base+tatp"] >= 0.999
        assert normalized["base+tatp+tcme"] >= normalized["base+tatp"] * 0.999
    assert tatp_gain >= 1.0
    assert tcme_gain >= 1.0
    assert tatp_gain >= tcme_gain * 0.95
