"""Benchmark regenerating Fig. 13 (and the §VIII-B headline speedups).

Prints, for every Table II model and every system (six baselines + TEMP), the
chosen configuration, OOM status, step-time breakdown, peak memory, and
throughput — the rows the paper's figure plots — and asserts the reproduced
shape: TEMP is the fastest non-OOM system for every model, Megatron-1 runs out
of memory on the 70B-class and larger models, and TEMP's average speedup over
every baseline exceeds 1x.
"""

from repro.experiments.fig13_overall import format_table, run_overall_comparison
from repro.workloads.models import TABLE_II_MODELS


def test_fig13_overall_comparison(benchmark):
    comparison = benchmark.pedantic(
        run_overall_comparison, kwargs={"models": TABLE_II_MODELS},
        rounds=1, iterations=1)

    print()
    print(format_table(comparison))

    # TEMP never OOMs and is the fastest feasible system for every model.
    for model in comparison.models():
        temp = comparison.cell(model, "TEMP")
        assert not temp.oom, f"TEMP went OOM on {model}"
        for system in comparison.systems():
            cell = comparison.cell(model, system)
            if system == "TEMP" or cell.oom:
                continue
            assert temp.step_time <= cell.step_time * 1.001, (
                f"TEMP slower than {system} on {model}")

    # Megatron-1 cannot hold the 70B-class and larger models (Fig. 13's OOMs).
    for model in ("llama3-70b", "gpt3-76b", "gpt3-175b", "opt-175b"):
        assert comparison.cell(model, "Mega+SMap").oom

    # Average speedups over every baseline are > 1x (paper: 1.20x-1.69x).
    speedups = comparison.average_speedups()
    assert all(value > 1.0 for value in speedups.values()), speedups

    # TEMP's peak memory never exceeds the best baseline by more than 10%
    # (the paper reports 49%-82% of the baselines' usage on average).
    for model in comparison.models():
        ratios = comparison.memory_ratio(model)
        feasible = [
            ratio for system, ratio in ratios.items()
            if not comparison.cell(model, system).oom
        ]
        if feasible:
            assert min(feasible) <= 1.1
