"""Benchmark regenerating Fig. 18 (optimal TATP degree across GPT-3 models)."""

from repro.experiments.fig18_convergence import optimal_tatp_degrees, run_convergence


def test_fig18_tatp_convergence(benchmark):
    results = benchmark.pedantic(
        run_convergence,
        kwargs={"model_names": ("gpt3-6.7b", "gpt3-76b", "gpt3-175b"),
                "seq_lengths": (2048, 16384)},
        rounds=1, iterations=1)

    degrees = optimal_tatp_degrees(results)
    print()
    for (model, seq), sweep in results.items():
        best = sweep.best()
        gain = best.throughput / sweep.best_without_tatp().throughput
        print(f"{model:<12} seq={seq:<6d} best={best.label:<14} "
              f"tatp={best.tatp:<3d} gain-over-best-non-tatp={gain:4.2f}x")

    # Paper: the winning TATP degree consistently falls in a moderate band
    # (8-16 in the paper; we accept 2-32 as the reproduced band) and the best
    # configuration never loses to the best TATP-free configuration.
    for (model, seq), sweep in results.items():
        best = sweep.best()
        assert 1 <= best.tatp <= 32
        assert best.throughput >= sweep.best_without_tatp().throughput * 0.999
    # At least half of the scenarios pick a TATP degree of 4 or more.
    moderate = sum(1 for degree in degrees.values() if degree >= 4)
    assert moderate * 2 >= len(degrees)
