"""Benchmark regenerating Fig. 14 (power breakdown and power efficiency)."""

from repro.experiments.fig14_power import run_power_comparison
from repro.workloads.models import TABLE_II_MODELS


def test_fig14_power_efficiency(benchmark):
    comparison = benchmark.pedantic(
        run_power_comparison, kwargs={"models": TABLE_II_MODELS},
        rounds=1, iterations=1)

    print()
    print("model            system      comp(W)   dram(W)   comm(W)   "
          "total(W)  tok/s/W")
    for cell in comparison.cells:
        print(f"{cell.model:<16} {cell.system:<11} {cell.compute_watts:9.0f} "
              f"{cell.dram_watts:9.0f} {cell.comm_watts:9.0f} "
              f"{cell.total_watts:9.0f} {cell.power_efficiency:9.2f}")

    gains = {system: comparison.efficiency_gain_over(system)
             for system in comparison.systems() if system != "TEMP"}
    print("TEMP power-efficiency gains:",
          {k: round(v, 2) for k, v in gains.items()})

    # Paper: TEMP achieves 1.23x-1.85x higher power efficiency than every
    # baseline; here we require a gain > 1x against each.
    assert all(value > 1.0 for value in gains.values()), gains

    # Computation dominates the power budget (paper: > 50% of total).
    for model in comparison.models():
        cell = comparison.cell(model, "TEMP")
        assert cell.breakdown()["compute"] > 0.5

    # TEMP's total power stays at or below the baselines' (paper: 88-99%).
    ratios = {system: comparison.power_ratio_over(system)
              for system in comparison.systems() if system != "TEMP"}
    assert all(value <= 1.05 for value in ratios.values()), ratios
