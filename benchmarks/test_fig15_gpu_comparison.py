"""Benchmark regenerating Fig. 15 (GPU cluster vs wafer-scale chip)."""

from repro.core.metrics import geometric_mean
from repro.experiments.fig15_gpu_comparison import run_gpu_comparison


def test_fig15_gpu_comparison(benchmark):
    rows = benchmark.pedantic(
        run_gpu_comparison,
        kwargs={"models": ["gpt3-6.7b", "llama2-7b", "llama3-70b", "gpt3-76b"]},
        rounds=1, iterations=1)

    print()
    print("model          GPU+MeSP(s)  Wafer+MeSP(s)  Wafer+TEMP(s)  "
          "TEMP/GPU  TEMP/WaferMeSP")
    for row in rows:
        print(f"{row.model:<14} {row.gpu_mesp_time:11.3f}  "
              f"{row.wafer_mesp_time:13.3f}  {row.wafer_temp_time:13.3f}  "
              f"{row.temp_speedup_over_gpu:8.2f}  "
              f"{row.temp_speedup_over_wafer_mesp:10.2f}")

    # Paper: Wafer+TEMP achieves the lowest training latency, beating both the
    # GPU cluster running MeSP and the wafer running MeSP.
    for row in rows:
        assert row.wafer_temp_time <= row.gpu_mesp_time * 1.001
        assert row.wafer_temp_time <= row.wafer_mesp_time * 1.001
    mean_over_gpu = geometric_mean(
        [row.temp_speedup_over_gpu for row in rows])
    mean_over_wafer = geometric_mean(
        [row.temp_speedup_over_wafer_mesp for row in rows])
    print(f"average TEMP speedup: {mean_over_gpu:.2f}x over GPU+MeSP, "
          f"{mean_over_wafer:.2f}x over Wafer+MeSP")
    assert mean_over_gpu > 1.0
    assert mean_over_wafer > 1.0
