"""Benchmark regenerating Fig. 19 (multi-wafer scalability)."""

from repro.experiments.fig19_multiwafer import run_multiwafer_study


def test_fig19_multiwafer_scaling(benchmark):
    study = benchmark.pedantic(
        run_multiwafer_study, kwargs={"num_microbatches": 16},
        rounds=1, iterations=1)

    print()
    print("model          wafers system      spec                               "
          "pp  step(s)  bubble(s)  tok/s")
    for cell in study.cells:
        print(f"{cell.model:<14} {cell.num_wafers:5d}  {cell.system:<11} "
              f"{cell.spec:<34} {cell.pp_degree:3d} {cell.step_time:8.2f} "
              f"{cell.bubble_time:9.2f} {cell.throughput:9.0f}")

    # Paper: TEMP achieves the highest throughput on every multi-wafer model
    # (1.2x-1.6x over the baselines) by keeping the pipeline degree low.
    for model in study.models():
        temp = study.cell(model, "TEMP")
        assert not temp.oom
        for system in study.systems():
            if system == "TEMP":
                continue
            cell = study.cell(model, system)
            if cell.oom:
                continue
            assert temp.throughput >= cell.throughput * 0.999, (model, system)
    # TEMP's pipeline degree never exceeds the baselines' smallest choice.
    for model in study.models():
        temp_pp = study.cell(model, "TEMP").pp_degree
        baseline_pps = [study.cell(model, system).pp_degree
                        for system in study.systems() if system != "TEMP"]
        assert temp_pp <= max(baseline_pps)
