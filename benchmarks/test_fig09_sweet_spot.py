"""Benchmark regenerating Fig. 9 (TATP degree sweet spot)."""

from repro.experiments.fig09_sweet_spot import (
    optimal_degree,
    optimal_power_efficiency_degree,
    run_sweet_spot,
)


def test_fig09_sweet_spot(benchmark):
    points = benchmark.pedantic(run_sweet_spot, rounds=1, iterations=1)

    print()
    print("N    throughput      mem/die(MB)  comp(ms)  comm(ms)  power(W)")
    for point in points:
        print(f"{point.degree:<4d} {point.throughput:12.3e}  "
              f"{point.memory_bytes_per_die / 2**20:10.1f}  "
              f"{point.compute_time * 1e3:8.3f}  {point.comm_time * 1e3:8.3f}  "
              f"{point.total_power:8.0f}")
    best = optimal_degree(points)
    best_power = optimal_power_efficiency_degree(points)
    print(f"optimal throughput degree: {best}; "
          f"optimal power-efficiency degree: {best_power}")

    # Paper: the throughput sweet spot sits at N ~ 8-16 and throughput declines
    # on both sides of it; power efficiency peaks at or below the same point.
    assert 4 <= best <= 16
    throughput = {p.degree: p.throughput for p in points}
    assert throughput[best] > throughput[2]
    assert throughput[best] > throughput[64]
    assert best_power <= best
    # Memory per die scales as O(1/N).
    memory = {p.degree: p.memory_bytes_per_die for p in points}
    assert memory[2] / memory[64] == 32
