"""Benchmark regenerating Fig. 17 (mixed-parallelism sweep for Llama2 7B)."""

import pytest

from repro.experiments.fig17_parallel_configs import run_config_sweep


@pytest.mark.parametrize("seq_length,batch_size", [(2048, 128), (16384, 32)])
def test_fig17_llama2_config_sweep(benchmark, seq_length, batch_size):
    sweep = benchmark.pedantic(
        run_config_sweep,
        kwargs={"model_name": "llama2-7b", "seq_length": seq_length,
                "batch_size": batch_size},
        rounds=1, iterations=1)

    normalized = sweep.normalized()
    print()
    print(f"Llama2-7B, seq={seq_length}, batch={batch_size} "
          "(throughput normalised to best non-TATP config)")
    for config in sorted(sweep.configs, key=lambda c: -c.throughput)[:10]:
        print(f"  {config.label:<14} thpt={normalized[config.label]:5.2f} "
              f"mem={config.memory_gb:5.1f}GB oom={config.oom}")

    best = sweep.best()
    best_tatp = sweep.best_with_tatp()
    best_plain = sweep.best_without_tatp()
    print(f"best overall: {best.label}; best TATP: {best_tatp.label}; "
          f"best non-TATP: {best_plain.label}")

    # Paper: configurations using TATP dominate; the overall winner uses a
    # moderate (not extreme) TATP degree and beats the best TATP-free config.
    assert best_tatp.throughput >= best_plain.throughput * 0.98
    assert best.throughput > 0
    assert 1 <= best.tatp <= 32
