"""Benchmark for §VIII-H (dual-level search vs exhaustive/ILP search time)."""

from repro.experiments.search_time import run_search_time_comparison


def test_search_time_comparison(benchmark):
    result = benchmark.pedantic(
        run_search_time_comparison,
        kwargs={"model_name": "gpt3-76b", "max_candidates": 10,
                "exhaustive_cap": 20000, "ga_generations": 8},
        rounds=1, iterations=1)

    print()
    print(f"model={result.model} operators={result.num_operators} "
          f"candidates={result.num_candidates}")
    print(f"DLS:        {result.dls_seconds:8.2f}s  cost={result.dls_cost:.4f}  "
          f"evaluations={result.dls_evaluations}")
    print(f"exhaustive: {result.exhaustive_seconds:8.2f}s "
          f"(truncated={result.exhaustive_truncated}, "
          f"evaluated {result.exhaustive_evaluations} of "
          f"{result.exhaustive_total_space:.2e} combinations)")
    print(f"projected full-exhaustive time: "
          f"{result.projected_exhaustive_seconds:.2e}s "
          f"-> projected speedup {result.projected_speedup:.1e}x")

    # Paper: the dual-level search is > 200x faster than the ILP baseline.
    assert result.dls_seconds < 300
    assert result.projected_speedup > 200
    assert result.exhaustive_total_space > result.dls_evaluations
