"""Benchmark regenerating Fig. 20 (fault tolerance sweeps)."""

from repro.experiments.fig20_fault_tolerance import run_fault_tolerance


def test_fig20_fault_tolerance(benchmark):
    study = benchmark.pedantic(run_fault_tolerance, rounds=1, iterations=1)

    print()
    print("link-fault sweep (rate -> normalised throughput):")
    for point in study.link_sweep:
        print(f"  {point.fault_rate:4.0%} -> {point.relative_throughput:5.2f}")
    print("core-fault sweep (rate -> normalised throughput):")
    for point in study.core_sweep:
        print(f"  {point.fault_rate:4.0%} -> {point.relative_throughput:5.2f}")

    # Paper: link faults hit a throughput cliff (around a 35% fault rate),
    # while core faults degrade gracefully (~80% throughput at a 25% rate).
    cliff = study.link_cliff_rate(threshold=0.5)
    assert cliff is not None and 0.2 <= cliff <= 0.6
    assert study.link_sweep[0].relative_throughput > 0.99
    assert study.core_sweep[-1].relative_throughput > 0.6
    # Core-fault degradation is monotone and never cliff-like.
    rates = [point.relative_throughput for point in study.core_sweep]
    assert all(later <= earlier + 1e-6 for earlier, later in zip(rates, rates[1:]))
