"""Benchmark regenerating Fig. 21 (DNN cost-model accuracy vs regression)."""

from repro.experiments.fig21_cost_model import run_cost_model_validation


def test_fig21_cost_model_accuracy(benchmark):
    study = benchmark.pedantic(
        run_cost_model_validation,
        kwargs={"train_samples_per_category": 400,
                "test_samples_per_category": 500, "epochs": 200},
        rounds=1, iterations=1)

    print()
    print("category        DNN corr  DNN err   regression corr  regression err")
    for category in sorted(study.dnn_accuracy):
        dnn = study.dnn_accuracy[category]
        reg = study.regression_accuracy[category]
        print(f"{category:<14} {dnn.correlation:9.3f} {dnn.relative_error:8.2%} "
              f"{reg.correlation:16.3f} {reg.relative_error:15.2%}")
    print(f"DNN query latency: {study.dnn_query_seconds * 1e6:.1f} us")

    # Paper: the DNN model reaches > 0.98 correlation at ~4-5% error while the
    # regression baseline's error is 2-3x larger; a query takes microseconds.
    assert study.dnn_min_correlation() > 0.9
    assert study.dnn_max_error() < 0.15
    assert study.dnn_max_error() < study.regression_max_error()
    assert study.dnn_query_seconds < 1e-2
