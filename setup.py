"""Packaging for the TEMP reproduction.

Installing the package (``pip install -e .``) provides the ``repro`` console
script — the same CLI as ``PYTHONPATH=src python -m repro``.
"""

from setuptools import find_packages, setup

setup(
    name="temp-repro",
    version="0.1.0",
    description="Reproduction of TEMP: memory-efficient physical-aware "
                "tensor partition-mapping for wafer-scale chips (HPCA 2026)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro=repro.runner.cli:main",
        ],
    },
)
